//! Error types for the storage stack.

use std::fmt;

/// An I/O request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoError {
    /// Access past the end of a file.
    OutOfRange {
        file: u32,
        offset: u64,
        len: u64,
        file_len: u64,
    },
    /// A direct-I/O request whose offset or length is not sector-aligned.
    ///
    /// The paper (§4.4 "Access Granularity") relies on this constraint: with
    /// 512 B sectors and float32 features, a single-node read needs a
    /// dimension of at least 128, otherwise neighboring nodes must be loaded
    /// jointly.
    Misaligned { offset: u64, len: u64 },
    /// The device was shut down while requests were outstanding.
    DeviceClosed,
    /// Unknown file handle.
    NoSuchFile(u32),
    /// The ring's software submission queue is full; reap completions or
    /// call `submit` before preparing more entries.
    RingFull,
    /// An injected or modeled media failure (uncorrectable read). Carries
    /// the file and offset for diagnostics.
    DeviceFault { file: u32, offset: u64 },
    /// The operation's retry-policy deadline expired before a completion
    /// arrived (see [`crate::RetryPolicy::op_timeout`]).
    Timeout,
    /// A read returned successfully but its bytes failed checksum
    /// verification against the device's per-sector CRC table (see
    /// [`crate::IntegrityError`]). Transient for retry purposes: a re-read
    /// heals in-flight corruption, and the scrubber heals media corruption.
    Corrupt { file: u32, offset: u64 },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::OutOfRange {
                file,
                offset,
                len,
                file_len,
            } => write!(
                f,
                "I/O out of range: file {file} offset {offset} len {len} (file len {file_len})"
            ),
            IoError::Misaligned { offset, len } => write!(
                f,
                "direct I/O requires sector alignment: offset {offset} len {len}"
            ),
            IoError::DeviceClosed => write!(f, "storage device closed"),
            IoError::NoSuchFile(id) => write!(f, "no such file: {id}"),
            IoError::RingFull => write!(f, "submission queue full"),
            IoError::DeviceFault { file, offset } => {
                write!(f, "device fault reading file {file} at offset {offset}")
            }
            IoError::Timeout => write!(f, "I/O operation timed out"),
            IoError::Corrupt { file, offset } => {
                write!(
                    f,
                    "checksum verification failed for file {file} at offset {offset}"
                )
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<crate::integrity::IntegrityError> for IoError {
    fn from(e: crate::integrity::IntegrityError) -> Self {
        IoError::Corrupt {
            file: e.file,
            offset: e.offset,
        }
    }
}

/// Host memory budget exhausted (the paper's OOM outcomes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OomError {
    /// Bytes the allocation asked for.
    pub requested: u64,
    /// Bytes available (after attempting page-cache reclaim).
    pub available: u64,
    /// Budget the governor enforces.
    pub budget: u64,
}

impl fmt::Display for OomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of memory: requested {} B, available {} B of {} B budget",
            self.requested, self.available, self.budget
        )
    }
}

impl std::error::Error for OomError {}
