//! Host-memory budget enforcement.
//!
//! The paper's evaluation constrains host memory between 8 GB and 128 GB and
//! observes both performance (Fig 9) and hard OOM failures (Ginex at 8 GB,
//! MariusGNN with MAG240M). We cannot constrain the real OS, so every
//! memory consumer in this reproduction — the page-cache model, staging
//! buffers, application caches, in-memory topology — charges a
//! [`MemoryGovernor`] instead.
//!
//! Two charge kinds mirror Linux semantics:
//!
//! * [`ChargeKind::PageCache`] — reclaimable; the page cache registers
//!   itself as a [`MemoryReclaimer`] and is shrunk when anonymous memory
//!   needs room. This is precisely the mechanism of the paper's memory
//!   contention: a growing anonymous footprint (feature buffers) evicts
//!   cached topology pages and sampling slows down.
//! * [`ChargeKind::Anonymous`] — not reclaimable; if the budget cannot be
//!   met even after reclaiming the page cache, the charge fails with
//!   [`OomError`].

use crate::error::OomError;
use gnndrive_sync::{LockRank, OrderedMutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// What kind of memory a charge represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChargeKind {
    /// Reclaimable file-backed pages (evicted under pressure, never OOMs the
    /// charger — the cache simply shrinks).
    PageCache,
    /// Anonymous application memory (buffers, caches, tensors). Failing to
    /// satisfy it is an OOM.
    Anonymous,
}

/// Something that can give memory back under pressure (the page cache).
pub trait MemoryReclaimer: Send + Sync {
    /// Try to free at least `want` bytes; return the bytes actually freed.
    fn reclaim(&self, want: u64) -> u64;
}

/// QoS lane of a waiting admission (DESIGN.md §11).
///
/// Serving admissions are latency-critical: a user is blocked on the
/// answer. Training admissions are throughput work that can soak whatever
/// is left over. While at least one [`Lane::Serve`] admission is waiting,
/// [`Lane::Bulk`] waiters defer their charge attempts so freed memory goes
/// to the serve lane first — bounded, so a sustained serving load can slow
/// training admissions but never starve them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Lane {
    /// Latency-critical online inference admissions.
    Serve,
    /// Throughput-oriented training / baseline-loader admissions.
    #[default]
    Bulk,
}

/// Byte-granular host memory budget shared by all subsystems.
pub struct MemoryGovernor {
    budget: u64,
    used_anonymous: AtomicU64,
    used_page_cache: AtomicU64,
    /// Serve-lane admissions currently inside `charge_waiting_lane`.
    /// Bulk waiters consult this to decide whether to defer.
    serve_waiters: AtomicU64,
    reclaimers: OrderedMutex<Vec<Weak<dyn MemoryReclaimer>>>,
}

impl std::fmt::Debug for MemoryGovernor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryGovernor")
            .field("budget", &self.budget)
            .field("used_anonymous", &self.used_anonymous)
            .field("used_page_cache", &self.used_page_cache)
            .finish()
    }
}

impl MemoryGovernor {
    /// A governor enforcing `budget` bytes of host memory.
    pub fn new(budget: u64) -> Arc<Self> {
        Arc::new(MemoryGovernor {
            budget,
            used_anonymous: AtomicU64::new(0),
            used_page_cache: AtomicU64::new(0),
            serve_waiters: AtomicU64::new(0),
            reclaimers: OrderedMutex::new(LockRank::Governor, Vec::new()),
        })
    }

    /// An effectively unlimited governor (tests, unconstrained runs).
    pub fn unlimited() -> Arc<Self> {
        Self::new(u64::MAX / 2)
    }

    pub fn budget(&self) -> u64 {
        self.budget
    }

    pub fn used(&self) -> u64 {
        self.used_anonymous.load(Ordering::Acquire) + self.used_page_cache.load(Ordering::Acquire)
    }

    pub fn used_anonymous(&self) -> u64 {
        self.used_anonymous.load(Ordering::Acquire)
    }

    pub fn used_page_cache(&self) -> u64 {
        self.used_page_cache.load(Ordering::Acquire)
    }

    /// Bytes still unallocated (before any reclaim).
    pub fn available(&self) -> u64 {
        self.budget.saturating_sub(self.used())
    }

    /// Register a reclaimer consulted when anonymous charges hit the budget.
    pub fn register_reclaimer(&self, r: &Arc<dyn MemoryReclaimer>) {
        self.reclaimers.lock().push(Arc::downgrade(r));
    }

    fn counter(&self, kind: ChargeKind) -> &AtomicU64 {
        match kind {
            ChargeKind::PageCache => &self.used_page_cache,
            ChargeKind::Anonymous => &self.used_anonymous,
        }
    }

    /// Attempt to reserve `bytes` without triggering reclaim.
    ///
    /// Returns `false` if the budget would be exceeded. Used by the page
    /// cache, which shrinks itself instead of pressuring others.
    pub fn try_charge(self: &Arc<Self>, bytes: u64, kind: ChargeKind) -> Option<MemCharge> {
        let counter = self.counter(kind);
        // Acquire/Release pairing: a successful charge publishes the new
        // byte count to every other thread's admission decision, and the
        // loads must observe releases performed by `release()` on other
        // threads — with everything Relaxed, an admission could act on a
        // stale counter and overshoot the budget on weakly-ordered
        // hardware (the hazard flagged by `cargo xtask lint`).
        let mut cur = counter.load(Ordering::Acquire);
        loop {
            let other = match kind {
                ChargeKind::PageCache => self.used_anonymous.load(Ordering::Acquire),
                ChargeKind::Anonymous => self.used_page_cache.load(Ordering::Acquire),
            };
            if cur + bytes + other > self.budget {
                return None;
            }
            match counter.compare_exchange_weak(
                cur,
                cur + bytes,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    return Some(MemCharge {
                        gov: Arc::clone(self),
                        bytes,
                        kind,
                    })
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Reserve `bytes` of anonymous memory, reclaiming page cache if needed.
    ///
    /// This is the "malloc" of the reproduction; on failure it returns the
    /// paper's OOM outcome.
    pub fn charge(self: &Arc<Self>, bytes: u64) -> Result<MemCharge, OomError> {
        if let Some(c) = self.try_charge(bytes, ChargeKind::Anonymous) {
            return Ok(c);
        }
        // Under pressure: ask reclaimers (page cache) to shrink.
        let deficit = (self.used() + bytes).saturating_sub(self.budget);
        let mut freed = 0u64;
        {
            let mut rs = self.reclaimers.lock();
            rs.retain(|w| w.strong_count() > 0);
            let live: Vec<_> = rs.iter().filter_map(|w| w.upgrade()).collect();
            drop(rs);
            for r in live {
                if freed >= deficit {
                    break;
                }
                freed += r.reclaim(deficit - freed);
            }
        }
        self.try_charge(bytes, ChargeKind::Anonymous)
            .ok_or_else(|| OomError {
                requested: bytes,
                available: self.available(),
                budget: self.budget,
            })
    }

    /// Like [`MemoryGovernor::charge`], but wait (polling reclaim) up to
    /// `timeout` for memory to free up before declaring OOM — the
    /// behaviour of an allocation that triggers kernel reclaim and direct
    /// compaction rather than failing fast. Used by baseline loaders whose
    /// real counterparts block inside `malloc` under pressure.
    pub fn charge_waiting(
        self: &Arc<Self>,
        bytes: u64,
        timeout: std::time::Duration,
    ) -> Result<MemCharge, OomError> {
        self.charge_waiting_lane(bytes, timeout, Lane::Bulk)
    }

    /// Serve-lane admissions currently waiting for memory.
    pub fn serve_waiters(&self) -> u64 {
        self.serve_waiters.load(Ordering::Acquire)
    }

    /// Lane-aware [`MemoryGovernor::charge_waiting`] (DESIGN.md §11).
    ///
    /// A [`Lane::Serve`] waiter registers itself in `serve_waiters` for the
    /// duration of its wait and polls `charge` every 2 ms. A [`Lane::Bulk`]
    /// waiter *defers* — it skips its charge attempts while any serve
    /// waiter is registered, so memory freed under pressure is taken by the
    /// serve lane first — but only for a bounded number of polls (~64 ms),
    /// after which it competes normally again. Deference is therefore a
    /// priority boost, not a lockout: bulk admissions cannot be starved
    /// past the defer cap, and their own `timeout` still bounds the whole
    /// wait.
    pub fn charge_waiting_lane(
        self: &Arc<Self>,
        bytes: u64,
        timeout: std::time::Duration,
        lane: Lane,
    ) -> Result<MemCharge, OomError> {
        /// Max consecutive 2 ms polls a bulk waiter yields to the serve
        /// lane before attempting its charge anyway (starvation bound).
        const BULK_DEFER_POLLS: u32 = 32;

        let _serve_slot = match lane {
            Lane::Serve => Some(ServeWaiterSlot::register(self)),
            Lane::Bulk => None,
        };
        let deadline = std::time::Instant::now() + timeout;
        let mut stalled = None;
        let mut deferred_polls = 0u32;
        loop {
            let defer = lane == Lane::Bulk
                && deferred_polls < BULK_DEFER_POLLS
                && self.serve_waiters.load(Ordering::Acquire) > 0;
            let outcome = if defer {
                deferred_polls += 1;
                gnndrive_telemetry::counter("governor.bulk_deferrals").inc();
                Err(OomError {
                    requested: bytes,
                    available: self.available(),
                    budget: self.budget,
                })
            } else {
                self.charge(bytes)
            };
            match outcome {
                Ok(c) => {
                    if lane == Lane::Serve && stalled.is_some() {
                        gnndrive_telemetry::counter("governor.serve_admissions_waited").inc();
                    }
                    return Ok(c);
                }
                Err(e) => {
                    if stalled.is_none() {
                        // Count admissions that had to wait (not each poll):
                        // the paper's memory-contention symptom is threads
                        // stalling at allocation, not how long the 2 ms poll
                        // loop spins. The timer spans the whole stalled
                        // admission and feeds the 𝔒1 attribution bucket.
                        stalled = Some(gnndrive_telemetry::wait_timer(
                            gnndrive_telemetry::WaitKind::MemAdmission,
                        ));
                        gnndrive_telemetry::counter("governor.admission_stalls").inc();
                    }
                    if std::time::Instant::now() >= deadline {
                        // One last *real* attempt: a deferring bulk waiter
                        // must not report OOM without ever having tried.
                        return if defer { self.charge(bytes) } else { Err(e) };
                    }
                    let _w = gnndrive_telemetry::state(gnndrive_telemetry::State::IoWait);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            }
        }
    }

    fn release(&self, bytes: u64, kind: ChargeKind) {
        let counter = self.counter(kind);
        // AcqRel: the subtraction releases this charge's bytes to other
        // threads' admission loads (which acquire), so freed memory is
        // observed together with whatever writes preceded the drop.
        let prev = counter.fetch_sub(bytes, Ordering::AcqRel);
        debug_assert!(prev >= bytes, "memory release underflow");
    }
}

/// RAII registration of a serve-lane waiter: increments `serve_waiters`
/// while a serving admission is inside its wait loop, so concurrently
/// waiting bulk admissions know to defer.
struct ServeWaiterSlot<'a> {
    gov: &'a MemoryGovernor,
}

impl<'a> ServeWaiterSlot<'a> {
    fn register(gov: &'a MemoryGovernor) -> Self {
        gov.serve_waiters.fetch_add(1, Ordering::AcqRel);
        ServeWaiterSlot { gov }
    }
}

impl Drop for ServeWaiterSlot<'_> {
    fn drop(&mut self) {
        let prev = self.gov.serve_waiters.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev >= 1, "serve waiter count underflow");
    }
}

/// RAII receipt for a memory reservation; releases on drop.
pub struct MemCharge {
    gov: Arc<MemoryGovernor>,
    bytes: u64,
    kind: ChargeKind,
}

impl std::fmt::Debug for MemCharge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemCharge")
            .field("bytes", &self.bytes)
            .field("kind", &self.kind)
            .finish()
    }
}

impl MemCharge {
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for MemCharge {
    fn drop(&mut self) {
        self.gov.release(self.bytes, self.kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_and_releases_balance() {
        let gov = MemoryGovernor::new(1000);
        {
            let _a = gov.charge(400).unwrap();
            let _b = gov.charge(400).unwrap();
            assert_eq!(gov.used(), 800);
            assert!(gov.charge(400).is_err());
        }
        assert_eq!(gov.used(), 0);
        assert!(gov.charge(1000).is_ok());
    }

    #[test]
    fn page_cache_charge_never_ooms_just_fails() {
        let gov = MemoryGovernor::new(100);
        let c = gov.try_charge(80, ChargeKind::PageCache);
        assert!(c.is_some());
        assert!(gov.try_charge(30, ChargeKind::PageCache).is_none());
    }

    struct FakeCache {
        gov: Arc<MemoryGovernor>,
        held: OrderedMutex<Vec<MemCharge>>,
    }

    impl MemoryReclaimer for FakeCache {
        fn reclaim(&self, want: u64) -> u64 {
            let mut held = self.held.lock();
            let mut freed = 0;
            while freed < want {
                match held.pop() {
                    Some(c) => freed += c.bytes(),
                    None => break,
                }
            }
            freed
        }
    }

    #[test]
    fn anonymous_pressure_reclaims_page_cache() {
        let gov = MemoryGovernor::new(1000);
        let cache = Arc::new(FakeCache {
            gov: Arc::clone(&gov),
            held: OrderedMutex::new(LockRank::Buffer, Vec::new()),
        });
        for _ in 0..8 {
            let c = cache.gov.try_charge(100, ChargeKind::PageCache).unwrap();
            cache.held.lock().push(c);
        }
        let as_reclaimer: Arc<dyn MemoryReclaimer> = cache.clone();
        gov.register_reclaimer(&as_reclaimer);
        assert_eq!(gov.used_page_cache(), 800);
        // 600 anonymous doesn't fit beside 800 cached, but reclaim frees room.
        let charge = gov.charge(600).expect("reclaim should make room");
        assert_eq!(charge.bytes(), 600);
        assert!(gov.used_page_cache() < 800);
    }

    #[test]
    fn oom_when_reclaim_is_not_enough() {
        let gov = MemoryGovernor::new(100);
        let err = gov.charge(200).unwrap_err();
        assert_eq!(err.requested, 200);
        assert_eq!(err.budget, 100);
    }

    #[test]
    fn serve_waiter_gets_freed_memory_before_a_bulk_waiter() {
        use std::time::Duration;
        // Budget fully held; a serve and a bulk admission both wait for it.
        // The bulk waiter defers while the serve waiter is registered, so
        // when the holder releases, the serve lane must win the memory.
        let gov = MemoryGovernor::new(100);
        let held = gov.charge(100).unwrap();

        let gov_s = Arc::clone(&gov);
        let serve = std::thread::spawn(move || {
            gov_s.charge_waiting_lane(100, Duration::from_secs(5), Lane::Serve)
        });
        // Wait until the serve waiter is registered before starting bulk.
        while gov.serve_waiters() == 0 {
            std::thread::yield_now();
        }
        let gov_b = Arc::clone(&gov);
        let bulk = std::thread::spawn(move || {
            gov_b.charge_waiting_lane(100, Duration::from_secs(5), Lane::Bulk)
        });
        // Give both waiters a few poll cycles, then free the budget.
        std::thread::sleep(Duration::from_millis(10));
        drop(held);

        let serve_charge = serve.join().expect("serve waiter thread");
        assert!(
            serve_charge.is_ok(),
            "serve admission must win the freed memory: {serve_charge:?}"
        );
        drop(serve_charge);
        // With the serve lane satisfied the bulk waiter gets through too.
        let bulk_charge = bulk.join().expect("bulk waiter thread");
        assert!(bulk_charge.is_ok(), "bulk must not starve: {bulk_charge:?}");
        assert_eq!(gov.serve_waiters(), 0, "waiter registration must balance");
    }

    #[test]
    fn bulk_waiter_is_not_starved_past_the_defer_cap() {
        use std::time::Duration;
        // A serve waiter that can NEVER be satisfied (asks for more than
        // the whole budget) stays registered; a bulk waiter asking for
        // available memory must still get through once its defer cap runs
        // out — deference is a boost, not a lockout.
        let gov = MemoryGovernor::new(100);
        let gov_s = Arc::clone(&gov);
        let serve = std::thread::spawn(move || {
            gov_s.charge_waiting_lane(200, Duration::from_secs(2), Lane::Serve)
        });
        while gov.serve_waiters() == 0 {
            std::thread::yield_now();
        }
        let bulk = gov.charge_waiting_lane(50, Duration::from_secs(2), Lane::Bulk);
        assert!(
            bulk.is_ok(),
            "bulk admission must proceed despite a permanent serve waiter: {bulk:?}"
        );
        drop(bulk);
        let serve_result = serve.join().expect("serve waiter thread");
        assert!(serve_result.is_err(), "an over-budget serve charge OOMs");
        assert_eq!(gov.serve_waiters(), 0, "waiter registration must balance");
    }

    #[test]
    fn charge_waiting_delegates_to_the_bulk_lane() {
        // The pre-lane API keeps working and succeeds immediately when
        // memory is free (no serve waiters → no deference).
        let gov = MemoryGovernor::new(100);
        let c = gov
            .charge_waiting(60, std::time::Duration::from_millis(50))
            .expect("uncontended charge");
        assert_eq!(c.bytes(), 60);
    }
}
