//! Property tests across the storage stack: the page cache and the async
//! ring must always return exactly what is on the disk image, whatever the
//! budget, access pattern, or eviction interleaving.

use gnndrive_storage::{
    IoRing, MemoryGovernor, PageCache, SimSsd, SsdProfile, PAGE_SIZE, SECTOR_SIZE,
};
use proptest::prelude::*;
use std::sync::Arc;

fn device_with_pattern(len: usize) -> (Arc<SimSsd>, gnndrive_storage::FileHandle, Vec<u8>) {
    let ssd = SimSsd::new(SsdProfile::instant());
    let file = ssd.create_file(len as u64);
    let data: Vec<u8> = (0..len).map(|i| (i * 131 % 251) as u8).collect();
    ssd.import(file, 0, &data).unwrap();
    (ssd, file, data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    /// Page-cache reads under an arbitrary byte budget equal the raw image.
    #[test]
    fn pagecache_reads_match_disk_under_any_budget(
        budget_pages in 0usize..20,
        reads in proptest::collection::vec((0usize..8000, 1usize..600), 1..40),
    ) {
        let (ssd, file, data) = device_with_pattern(8 * 1024);
        let gov = MemoryGovernor::new((budget_pages * PAGE_SIZE) as u64);
        let cache = PageCache::new(ssd, gov);
        let mut buf = vec![0u8; 600];
        for (off, len) in reads {
            let len = len.min(data.len().saturating_sub(off));
            if len == 0 {
                continue;
            }
            cache.read(file, off as u64, &mut buf[..len]);
            prop_assert_eq!(&buf[..len], &data[off..off + len]);
        }
    }

    /// Ring reads with arbitrary sector sets return the right sectors, in
    /// any completion order, tagged correctly.
    #[test]
    fn ring_reads_match_disk(
        sectors in proptest::collection::vec(0u64..64, 1..40),
        depth in 1usize..32,
    ) {
        let (ssd, file, data) = device_with_pattern(64 * SECTOR_SIZE as usize);
        let mut ring = IoRing::new(ssd, 64, true);
        let mut expected = Vec::new();
        for (i, &s) in sectors.iter().enumerate() {
            ring.prepare_read(file, s * SECTOR_SIZE, SECTOR_SIZE as usize, i as u64).unwrap();
            expected.push(s);
            if i % depth == depth - 1 {
                ring.submit();
            }
        }
        let mut seen = vec![false; sectors.len()];
        let mut count = 0;
        ring.drain(|c| {
            let buf = c.result.expect("read ok");
            let s = expected[c.user_data as usize] as usize;
            assert_eq!(&buf[..], &data[s * 512..(s + 1) * 512]);
            seen[c.user_data as usize] = true;
            count += 1;
        }).unwrap();
        prop_assert_eq!(count, sectors.len());
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Anonymous charges + page-cache reads never exceed the budget, and
    /// reads keep working (bypass) even under full pressure.
    #[test]
    fn governor_is_never_exceeded(
        budget_kb in 1u64..64,
        charges in proptest::collection::vec(1u64..16_000, 0..8),
    ) {
        let (ssd, file, data) = device_with_pattern(32 * 1024);
        let gov = MemoryGovernor::new(budget_kb * 1024);
        let cache = PageCache::new(ssd, Arc::clone(&gov));
        let mut held = Vec::new();
        for c in charges {
            if let Ok(ch) = gov.charge(c) {
                held.push(ch);
            }
            prop_assert!(gov.used() <= gov.budget());
        }
        let mut buf = vec![0u8; 100];
        for off in (0..32 * 1024 - 100).step_by(997) {
            cache.read(file, off as u64, &mut buf);
            prop_assert_eq!(&buf[..], &data[off..off + 100]);
            prop_assert!(gov.used() <= gov.budget(), "budget exceeded mid-read");
        }
    }
}

/// Concurrent mixed sync readers + ring writers on one device terminate
/// and observe consistent data (writers rewrite identical bytes).
#[test]
fn concurrent_sync_and_async_traffic() {
    let (ssd, file, data) = device_with_pattern(64 * 1024);
    let data = Arc::new(data);
    crossbeam::scope(|s| {
        for t in 0..3 {
            let ssd = Arc::clone(&ssd);
            let data = Arc::clone(&data);
            s.spawn(move |_| {
                let mut buf = vec![0u8; 512];
                for i in 0..40u64 {
                    let off = ((i * 37 + t * 13) % 127) * 512;
                    ssd.read_blocking(file, off, &mut buf, true).unwrap();
                    assert_eq!(&buf[..], &data[off as usize..off as usize + 512]);
                }
            });
        }
        let ssd2 = Arc::clone(&ssd);
        let data2 = Arc::clone(&data);
        s.spawn(move |_| {
            let mut ring = IoRing::new(ssd2, 16, true);
            for i in 0..40u64 {
                let off = (i % 128) * 512;
                while ring
                    .prepare_write(
                        file,
                        off,
                        data2[off as usize..off as usize + 512].to_vec(),
                        i,
                    )
                    .is_err()
                {
                    ring.submit();
                    ring.wait_completion().unwrap();
                }
                ring.submit();
            }
            ring.drain(|c| {
                c.result.unwrap();
            })
            .unwrap();
        });
    })
    .unwrap();
}
