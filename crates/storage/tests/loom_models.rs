//! Loom models of the storage-side concurrency protocols:
//!
//! * the [`MemoryGovernor::try_charge`] CAS admission loop
//!   (`src/governor.rs`) — the budget is never overshot and
//!   charge/release balances to zero;
//! * the SimSsd channel-worker handoff (`src/ssd.rs`) — submit /
//!   complete / deadline bookkeeping never loses a request, and a racing
//!   shutdown still answers every queued submission;
//! * the [`DeviceHealth`] window update and half-open probe slot
//!   (`src/health.rs`) — concurrent outcome records keep the error
//!   accounting consistent and trip the breaker exactly once, and the
//!   probe CAS admits exactly one prober per open circuit.
//!
//! Production code uses parking_lot (via gnndrive-sync) and OS-thread
//! mpsc channels, which loom cannot instrument, so each protocol is
//! re-stated here over `loom::sync` primitives with the same orderings.
//! The governor model copies the Acquire/Release choreography verbatim —
//! that is the part the satellite fix changed and the part a model
//! checker can actually falsify (all-Relaxed admission can overshoot on
//! weakly-ordered hardware).
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p gnndrive-storage --test
//! loom_models --release`. Offline, `loom` resolves to the std-threads
//! stress shim in `target/shims/loom`.
#![cfg(loom)]

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::{Arc, Condvar, Mutex};
use loom::thread;

// ---------------------------------------------------------------------
// Governor admission model
// ---------------------------------------------------------------------

/// Single-counter re-statement of `MemoryGovernor::try_charge`, same
/// orderings as `src/governor.rs`.
struct ModelGovernor {
    budget: u64,
    used: AtomicU64,
}

impl ModelGovernor {
    fn try_charge(&self, bytes: u64) -> bool {
        let mut cur = self.used.load(Ordering::Acquire);
        loop {
            if cur + bytes > self.budget {
                return false;
            }
            match self.used.compare_exchange_weak(
                cur,
                cur + bytes,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }

    fn release(&self, bytes: u64) {
        let prev = self.used.fetch_sub(bytes, Ordering::AcqRel);
        assert!(prev >= bytes, "release underflow: {prev} - {bytes}");
    }
}

/// Two threads race 60-byte charges against a 100-byte budget: at most
/// one admission may win, and the counter never exceeds the budget at
/// any observable point.
#[test]
fn governor_charge_race_never_overshoots_budget() {
    loom::model(|| {
        let gov = Arc::new(ModelGovernor {
            budget: 100,
            used: AtomicU64::new(0),
        });
        let g2 = Arc::clone(&gov);
        let t = thread::spawn(move || g2.try_charge(60));
        let mine = gov.try_charge(60);
        let theirs = t.join().unwrap();
        assert!(
            !(mine && theirs),
            "both 60-byte charges admitted against a 100-byte budget"
        );
        assert!(mine || theirs, "uncontended charge must succeed");
        assert!(gov.used.load(Ordering::Acquire) <= 100);
    });
}

/// Charge/release pairs on two threads balance to zero, and a release on
/// one thread makes room observed by an admission on the other.
#[test]
fn governor_charge_release_balances() {
    loom::model(|| {
        let gov = Arc::new(ModelGovernor {
            budget: 100,
            used: AtomicU64::new(0),
        });
        let g2 = Arc::clone(&gov);
        let t = thread::spawn(move || {
            if g2.try_charge(80) {
                g2.release(80);
            }
        });
        // Retry once after the peer's possible release: with AcqRel the
        // released bytes must become visible to a later admission.
        let mut got = gov.try_charge(40);
        if !got {
            t.join().unwrap();
            got = gov.try_charge(40);
            assert!(got, "release not visible to subsequent charge");
            gov.release(40);
        } else {
            gov.release(40);
            t.join().unwrap();
        }
        assert_eq!(gov.used.load(Ordering::Acquire), 0, "leak after balance");
    });
}

// ---------------------------------------------------------------------
// SimSsd channel-worker handoff model
// ---------------------------------------------------------------------

/// Mutex+Condvar re-statement of the submit → channel-worker → completion
/// pipeline in `src/ssd.rs` (real loom has no mpsc, so the queue is
/// explicit). `closed` mirrors `Shared::closed` with the same
/// Release-store / Acquire-load pairing used by `shutdown()`.
struct ModelRing {
    queue: Mutex<RingState>,
    submitted: Condvar,
    completed: Condvar,
    closed: loom::sync::atomic::AtomicBool,
}

struct RingState {
    /// Pending request deadlines (virtual clock ticks), FIFO.
    pending: Vec<u64>,
    /// (deadline, ok) completions.
    done: Vec<(u64, bool)>,
    /// The channel's virtual clock — monotone across serviced requests.
    cursor: u64,
    hung_up: bool,
}

impl ModelRing {
    fn new() -> Self {
        ModelRing {
            queue: Mutex::new(RingState {
                pending: Vec::new(),
                done: Vec::new(),
                cursor: 0,
                hung_up: false,
            }),
            submitted: Condvar::new(),
            completed: Condvar::new(),
            closed: loom::sync::atomic::AtomicBool::new(false),
        }
    }

    /// `SimSsd::submit_blocking` + `done.recv()`: enqueue, then wait for
    /// this request's completion. Returns `(deadline, ok)`.
    fn submit_and_wait(&self, service: u64) -> (u64, bool) {
        let mut st = self.queue.lock().unwrap();
        st.pending.push(service);
        self.submitted.notify_one();
        while st.done.is_empty() && !st.hung_up {
            st = self.completed.wait(st).unwrap();
        }
        if st.done.is_empty() {
            (0, false) // worker hung up without answering: must not happen
        } else {
            st.done.remove(0)
        }
    }

    /// One `channel_worker` servicing rounds until told to stop: pops a
    /// request, advances the virtual deadline cursor, completes it —
    /// failing fast (ok = false) when shutdown already closed the device.
    fn worker(&self, rounds: usize) {
        for _ in 0..rounds {
            let mut st = self.queue.lock().unwrap();
            while st.pending.is_empty() {
                st = self.submitted.wait(st).unwrap();
            }
            let service = st.pending.remove(0);
            if self.closed.load(Ordering::Acquire) {
                let at = st.cursor;
                st.done.push((at, false));
                self.completed.notify_all();
                continue;
            }
            let deadline = st.cursor + service;
            st.cursor = deadline;
            st.done.push((deadline, true));
            self.completed.notify_all();
        }
        let mut st = self.queue.lock().unwrap();
        st.hung_up = true;
        self.completed.notify_all();
    }

    fn shutdown(&self) {
        self.closed.store(true, Ordering::Release);
    }
}

/// Two submitters, one channel worker: every request is answered exactly
/// once and deadlines advance monotonically (the ring never hands two
/// requests the same service window).
#[test]
fn ring_submissions_complete_with_monotone_deadlines() {
    loom::model(|| {
        let ring = Arc::new(ModelRing::new());
        let w = {
            let r = Arc::clone(&ring);
            thread::spawn(move || r.worker(2))
        };
        let s2 = {
            let r = Arc::clone(&ring);
            thread::spawn(move || r.submit_and_wait(7))
        };
        let (d1, ok1) = ring.submit_and_wait(5);
        let (d2, ok2) = s2.join().unwrap();
        w.join().unwrap();
        assert!(ok1 && ok2, "open-device submissions must succeed");
        assert_ne!(d1, d2, "two requests shared one deadline slot");
        let st = ring.queue.lock().unwrap();
        assert!(st.pending.is_empty(), "request lost in the queue");
        assert_eq!(st.cursor, 12, "cursor must accumulate both services");
    });
}

// ---------------------------------------------------------------------
// DeviceHealth window + probe-slot model
// ---------------------------------------------------------------------

/// Re-statement of `DeviceHealth` (`src/health.rs`): the sliding window
/// lives behind a mutex, the current state is a lock-free atomic mirror
/// (Release store / Acquire load, exactly as production), and the
/// half-open probe slot is an AcqRel CAS on a flag that is released only
/// after the post-probe state settles.
struct ModelHealth {
    window: Mutex<ModelWindow>,
    /// 0 = Healthy, 2 = CircuitOpen (Degraded elided: the race under test
    /// is record-vs-record and probe-vs-probe, not threshold selection).
    state: loom::sync::atomic::AtomicU8,
    probing: loom::sync::atomic::AtomicBool,
    trips: AtomicU64,
}

struct ModelWindow {
    filled: u64,
    errors: u64,
}

impl ModelHealth {
    fn new() -> Self {
        ModelHealth {
            window: Mutex::new(ModelWindow {
                filled: 0,
                errors: 0,
            }),
            state: loom::sync::atomic::AtomicU8::new(0),
            probing: loom::sync::atomic::AtomicBool::new(false),
            trips: AtomicU64::new(0),
        }
    }

    /// `DeviceHealth::record`: push an outcome and run transitions while
    /// still holding the window lock (which is what serializes them).
    fn record_error(&self, trip_at: u64) {
        let mut w = self.window.lock().unwrap();
        w.filled += 1;
        w.errors += 1;
        assert!(w.errors <= w.filled, "error count exceeds sample count");
        if w.errors >= trip_at && self.state.load(Ordering::Acquire) == 0 {
            self.state.store(2, Ordering::Release);
            self.trips.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// `DeviceHealth::admit` for an open, cooled circuit: the probe slot
    /// CAS. Returns true when this caller won the single slot.
    fn try_probe(&self) -> bool {
        self.state.load(Ordering::Acquire) == 2
            && self
                .probing
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
    }

    /// `DeviceHealth::probe_result(true)`: close the circuit, then — and
    /// only then — release the probe slot.
    fn probe_success(&self) {
        let mut w = self.window.lock().unwrap();
        w.filled = 0;
        w.errors = 0;
        self.state.store(0, Ordering::Release);
        drop(w);
        self.probing.store(false, Ordering::Release);
    }
}

/// Two threads race error records through the window mutex: the counts
/// stay consistent and the breaker trips exactly once — the second
/// recorder must observe the first's transition and stay inert.
#[test]
fn health_window_race_trips_exactly_once() {
    loom::model(|| {
        let h = Arc::new(ModelHealth::new());
        let h2 = Arc::clone(&h);
        let t = thread::spawn(move || h2.record_error(2));
        h.record_error(2);
        t.join().unwrap();
        let w = h.window.lock().unwrap();
        assert_eq!((w.filled, w.errors), (2, 2), "a record was lost");
        assert_eq!(h.state.load(Ordering::Acquire), 2, "breaker must trip");
        assert_eq!(
            h.trips.load(Ordering::Acquire),
            1,
            "the trip transition must fire exactly once"
        );
    });
}

/// Two admitters race for the half-open probe slot of an open circuit:
/// exactly one wins. After its probe succeeds the circuit is closed and
/// the slot is free again — and a late admitter can no longer probe a
/// healthy device.
#[test]
fn health_probe_slot_admits_exactly_one() {
    loom::model(|| {
        let h = Arc::new(ModelHealth::new());
        h.record_error(1); // trip
        let h2 = Arc::clone(&h);
        let t = thread::spawn(move || h2.try_probe());
        let mine = h.try_probe();
        let theirs = t.join().unwrap();
        assert!(
            !(mine && theirs),
            "two probes admitted against one half-open slot"
        );
        assert!(mine || theirs, "an open cooled circuit must grant a probe");
        h.probe_success();
        assert_eq!(h.state.load(Ordering::Acquire), 0, "probe must close");
        assert!(
            !h.probing.load(Ordering::Acquire),
            "slot must be released after the state settles"
        );
        assert!(
            !h.try_probe(),
            "a closed circuit must not grant further probes"
        );
    });
}

// ---------------------------------------------------------------------
// QoS lane models: priority drain + bounded bulk deference
// ---------------------------------------------------------------------

/// Re-statement of the two-lane submission queue in `src/ssd.rs`
/// (`next_request`): the channel worker drains the serve lane before
/// touching the bulk lane, under the same lock that serializes
/// submission — so "a bulk request is popped while a serve request is
/// pending" is a checkable safety violation, not a race.
struct ModelLaneQueue {
    queue: Mutex<LaneQueueState>,
    submitted: Condvar,
}

struct LaneQueueState {
    serve: Vec<u64>,
    bulk: Vec<u64>,
    /// Lane of each pop, in service order (true = serve).
    pops: Vec<bool>,
    /// How many pops had already happened when the serve request landed.
    pops_at_serve_submit: usize,
}

impl ModelLaneQueue {
    fn new(bulk_backlog: &[u64]) -> Self {
        ModelLaneQueue {
            queue: Mutex::new(LaneQueueState {
                serve: Vec::new(),
                bulk: bulk_backlog.to_vec(),
                pops: Vec::new(),
                pops_at_serve_submit: 0,
            }),
            submitted: Condvar::new(),
        }
    }

    fn submit_serve(&self, id: u64) {
        let mut st = self.queue.lock().unwrap();
        st.pops_at_serve_submit = st.pops.len();
        st.serve.push(id);
        self.submitted.notify_one();
    }

    fn worker(&self, rounds: usize) {
        for _ in 0..rounds {
            let mut st = self.queue.lock().unwrap();
            while st.serve.is_empty() && st.bulk.is_empty() {
                st = self.submitted.wait(st).unwrap();
            }
            let is_serve = !st.serve.is_empty();
            if is_serve {
                st.serve.remove(0);
            } else {
                st.bulk.remove(0);
            }
            st.pops.push(is_serve);
        }
    }
}

/// A serve submission racing a worker over a two-deep bulk backlog: the
/// serve request is never popped last (it overtakes at least one queued
/// bulk request), no pop ever takes bulk while serve is visible, and
/// nothing is lost.
#[test]
fn lane_queue_serve_overtakes_queued_bulk() {
    loom::model(|| {
        let q = Arc::new(ModelLaneQueue::new(&[10, 11]));
        let w = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.worker(3))
        };
        q.submit_serve(1);
        w.join().unwrap();
        let st = q.queue.lock().unwrap();
        assert!(st.serve.is_empty() && st.bulk.is_empty(), "request lost");
        assert_eq!(st.pops.len(), 3);
        // The priority property: submit and pop share the queue lock, so
        // the very next pop after the serve submission must take the
        // serve lane — it overtakes every bulk request still queued.
        let serve_pos = st.pops.iter().position(|&s| s).expect("serve pop");
        assert_eq!(
            serve_pos, st.pops_at_serve_submit,
            "a queued bulk request was serviced ahead of the pending serve request"
        );
    });
}

/// Re-statement of `MemoryGovernor::charge_waiting_lane`'s bulk-side
/// deference (`src/governor.rs`): a bulk waiter polls, deferring while
/// `serve_waiters > 0` (Acquire, as production) — but for at most
/// `BULK_DEFER_POLLS` rounds, after which it charges anyway. The model
/// checks both sides: bulk never admits ahead of a registered serve
/// waiter *within* its deference budget, and an exhausted budget always
/// admits (no starvation).
#[test]
fn lane_governor_bulk_defers_bounded_then_admits() {
    const DEFER_BOUND: u32 = 2;
    loom::model(|| {
        let serve_waiters = Arc::new(AtomicU64::new(0));
        let serve_done = Arc::new(loom::sync::atomic::AtomicBool::new(false));

        let sw = Arc::clone(&serve_waiters);
        let sd = Arc::clone(&serve_done);
        let server = thread::spawn(move || {
            // ServeWaiterSlot: register (AcqRel), take the memory, drop.
            sw.fetch_add(1, Ordering::AcqRel);
            sd.store(true, Ordering::Release);
            let prev = sw.fetch_sub(1, Ordering::AcqRel);
            assert!(prev >= 1, "waiter registration must balance");
        });

        // Bulk waiter: the charge_waiting_lane poll loop.
        let mut deferred = 0u32;
        let admitted_with_serve_pending = loop {
            let pending = serve_waiters.load(Ordering::Acquire) > 0;
            if pending && deferred < DEFER_BOUND {
                deferred += 1;
                thread::yield_now();
                continue;
            }
            break pending;
        };
        if admitted_with_serve_pending {
            assert_eq!(
                deferred, DEFER_BOUND,
                "bulk admitted past a serve waiter with deference budget left"
            );
        }
        server.join().unwrap();
        assert_eq!(serve_waiters.load(Ordering::Acquire), 0);
        assert!(serve_done.load(Ordering::Acquire), "serve waiter starved");
    });
}

/// Shutdown racing a submission: the submitter is always answered —
/// either serviced (submitted before the close became visible) or failed
/// fast — never left waiting on a dead ring.
#[test]
fn ring_shutdown_race_always_answers_the_submitter() {
    loom::model(|| {
        let ring = Arc::new(ModelRing::new());
        let w = {
            let r = Arc::clone(&ring);
            thread::spawn(move || r.worker(1))
        };
        let closer = {
            let r = Arc::clone(&ring);
            thread::spawn(move || r.shutdown())
        };
        let (deadline, ok) = ring.submit_and_wait(5);
        w.join().unwrap();
        closer.join().unwrap();
        if ok {
            assert_eq!(deadline, 5, "serviced request must pay full latency");
        }
        let st = ring.queue.lock().unwrap();
        assert!(st.pending.is_empty(), "request lost during shutdown race");
    });
}
