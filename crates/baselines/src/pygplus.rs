//! PyG+ — the memory-mapped extension of PyTorch Geometric (Park et al.,
//! VLDB '22; the paper's first baseline).
//!
//! Mechanisms reproduced from §2/§3 of the GNNDrive paper:
//!
//! * topology **and** features are memory-mapped, so both fault through the
//!   one shared OS page cache — under a tight host budget, feature pages
//!   evict topology pages and sampling slows down (𝔒1);
//! * DataLoader-style worker threads run sample+extract concurrently with
//!   training, which *worsens* the contention (the paper: "the concurrent
//!   execution of sample and extract stages in PyG+ exacerbates the
//!   problem");
//! * extraction is synchronous buffered I/O on the critical path, and the
//!   whole mini-batch is then moved to the device with one blocking
//!   transfer (𝔒2);
//! * each in-flight batch materializes its gathered features in anonymous
//!   host memory (charged to the governor) and in device memory for
//!   training — large mini-batches OOM, as in the paper's Fig 10.

use crate::common::{gather_features_mmap, seed_labels, BaselineMetrics};
use gnndrive_core::{evaluate_model, EpochReport, TrainingSystem};
use gnndrive_device::GpuDevice;
use gnndrive_graph::Dataset;
use gnndrive_nn::{build_model, GnnModel, ModelKind};
use gnndrive_sampling::{BatchPlan, MiniBatchSample, MmapTopo, NeighborSampler, TopoReader};
use gnndrive_storage::{MemoryGovernor, PageCache};
use gnndrive_telemetry::{self as telemetry, State, ThreadClass};
use gnndrive_tensor::{Adam, Matrix, Optimizer};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// PyG+ knobs.
#[derive(Debug, Clone)]
pub struct PygPlusConfig {
    /// DataLoader workers doing sample+extract (PyG `num_workers`).
    pub num_workers: usize,
    /// Prefetch depth of the loader queue (PyG `prefetch_factor` ×
    /// workers).
    pub prefetch: usize,
    pub fanouts: Vec<usize>,
    pub batch_size: usize,
    pub seed: u64,
}

impl Default for PygPlusConfig {
    fn default() -> Self {
        PygPlusConfig {
            num_workers: 4,
            prefetch: 4,
            fanouts: vec![10, 10, 10],
            batch_size: 100,
            seed: 7,
        }
    }
}

/// See module docs.
pub struct PygPlus {
    cfg: PygPlusConfig,
    ds: Arc<Dataset>,
    device: Arc<GpuDevice>,
    governor: Arc<MemoryGovernor>,
    cache: Arc<PageCache>,
    topo: Arc<dyn TopoReader>,
    model: GnnModel,
    opt: Adam,
    metrics: BaselineMetrics,
}

impl PygPlus {
    pub fn new(
        ds: Arc<Dataset>,
        model_kind: ModelKind,
        hidden: usize,
        cfg: PygPlusConfig,
        device: Arc<GpuDevice>,
        governor: Arc<MemoryGovernor>,
        cache: Arc<PageCache>,
    ) -> Self {
        let topo: Arc<dyn TopoReader> = Arc::new(MmapTopo::new(
            Arc::clone(&ds.indptr),
            Arc::clone(&cache),
            ds.indices_file,
        ));
        let model = build_model(
            model_kind,
            ds.spec.feat_dim,
            hidden,
            ds.spec.num_classes,
            cfg.fanouts.len(),
            cfg.seed,
        );
        PygPlus {
            cfg,
            ds,
            device,
            governor,
            cache,
            topo,
            model,
            opt: Adam::new(0.003),
            metrics: BaselineMetrics::new("pygplus"),
        }
    }
}

/// One loaded batch traveling from a loader worker to the trainer.
struct LoadedBatch {
    sample: MiniBatchSample,
    features: Matrix,
    /// Host-memory charge for the gathered features (dropped after the
    /// device transfer).
    charge: gnndrive_storage::MemCharge,
}

impl TrainingSystem for PygPlus {
    fn name(&self) -> String {
        "PyG+".into()
    }

    fn train_epoch(&mut self, epoch: u64, max_batches: Option<usize>) -> EpochReport {
        telemetry::register_thread(ThreadClass::Cpu);
        let plan = BatchPlan::new(
            &self.ds.train_idx,
            self.cfg.batch_size,
            epoch,
            self.cfg.seed,
        );
        let full_batches = plan.num_batches();
        let batches = full_batches.min(max_batches.unwrap_or(usize::MAX));
        if batches == 0 {
            return EpochReport::default();
        }
        let sampler = Arc::new(NeighborSampler::new(
            Arc::clone(&self.topo),
            self.cfg.fanouts.clone(),
        ));
        let (tx, rx) = crossbeam::channel::bounded::<LoadedBatch>(self.cfg.prefetch.max(1));
        let cursor = AtomicUsize::new(0);
        let sample_nanos = AtomicU64::new(0);
        let extract_nanos = AtomicU64::new(0);
        let failed = Arc::new(AtomicBool::new(false));
        let error =
            gnndrive_sync::OrderedMutex::new(gnndrive_sync::LockRank::Pipeline, None::<String>);
        let io_before = self.ds.ssd.stats().snapshot();
        let dim = self.ds.spec.feat_dim;
        let mut train_secs = 0.0;
        let mut loss_sum = 0.0f64;
        let mut processed = 0usize;
        let t0 = Instant::now();

        crossbeam::scope(|s| {
            // DataLoader workers: sample then synchronously extract.
            for w in 0..self.cfg.num_workers.max(1) {
                let tx = tx.clone();
                let cursor = &cursor;
                let plan = &plan;
                let sampler = Arc::clone(&sampler);
                let cache = Arc::clone(&self.cache);
                let governor = Arc::clone(&self.governor);
                let ds = Arc::clone(&self.ds);
                let sample_nanos = &sample_nanos;
                let extract_nanos = &extract_nanos;
                let failed = Arc::clone(&failed);
                let error = &error;
                let seed = self.cfg.seed;
                s.builder()
                    .name(format!("pyg-loader-{w}"))
                    .spawn(move |_| {
                        telemetry::register_thread(ThreadClass::Cpu);
                        loop {
                            if failed.load(Ordering::Relaxed) {
                                break;
                            }
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= batches {
                                break;
                            }
                            let t = Instant::now();
                            let sample = {
                                let _busy = telemetry::state(State::Compute);
                                sampler.sample(i as u64, plan.batch(i), seed ^ epoch)
                            };
                            sample_nanos
                                .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);

                            let t = Instant::now();
                            // Anonymous host memory for the gathered batch.
                            let bytes = (sample.input_nodes.len() * dim * 4) as u64;
                            // Block under memory pressure like a real
                            // loader inside malloc/reclaim; only a
                            // persistent shortfall is an OOM.
                            let charge =
                                match governor.charge_waiting(bytes, Duration::from_secs(30)) {
                                    Ok(c) => c,
                                    Err(e) => {
                                        *error.lock() = Some(format!("loader OOM: {e}"));
                                        failed.store(true, Ordering::Relaxed);
                                        break;
                                    }
                                };
                            let features = {
                                let _busy = telemetry::state(State::Compute);
                                gather_features_mmap(
                                    &cache,
                                    ds.features_file,
                                    dim,
                                    &sample.input_nodes,
                                )
                            };
                            extract_nanos
                                .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                            if tx
                                .send(LoadedBatch {
                                    sample,
                                    features,
                                    charge,
                                })
                                .is_err()
                            {
                                break;
                            }
                        }
                    })
                    .expect("spawn loader");
            }
            drop(tx);

            // Trainer: blocking H2D transfer of the whole batch, then train.
            telemetry::register_thread(ThreadClass::Cpu);
            while let Ok(batch) = rx.recv() {
                if failed.load(Ordering::Relaxed) {
                    // Keep draining so loaders blocked in `send` on the full
                    // prefetch channel can observe the failure and exit —
                    // breaking here would leave them parked and hang the
                    // scope join.
                    continue;
                }
                let t = Instant::now();
                let bytes = (batch.features.rows() * batch.features.cols() * 4) as u64;
                // Device allocation for the batch features; OOM aborts.
                let dev_alloc = match self.device.memory.alloc(bytes) {
                    Ok(a) => a,
                    Err(e) => {
                        *error.lock() = Some(format!("device OOM: {e}"));
                        failed.store(true, Ordering::Relaxed);
                        continue;
                    }
                };
                self.device.transfer.pay_blocking(bytes);
                drop(batch.charge); // host copy freed after the transfer

                let y = seed_labels(&self.ds, &batch.sample.seeds);
                let flops = self.model.flops(&batch.sample.blocks);
                let result = self.device.compute.run(flops, || {
                    self.model
                        .train_step(&batch.sample.blocks, &batch.features, &y)
                });
                let mut params = self.model.params_mut();
                self.opt.step(&mut params);
                drop(dev_alloc);
                loss_sum += result.loss as f64;
                self.metrics
                    .batch_latency
                    .record(t.elapsed().as_nanos() as u64);
                self.metrics.batches.inc();
                train_secs += t.elapsed().as_secs_f64();
                processed += 1;
            }
        })
        .expect("pyg+ scope");

        let io = self.ds.ssd.stats().snapshot().delta_since(&io_before);
        self.metrics.epochs.inc();
        self.metrics.bytes_read.add(io.read_bytes);
        EpochReport {
            wall: t0.elapsed(),
            batches: processed,
            full_batches,
            failed_batches: 0,
            loss: (loss_sum / processed.max(1) as f64) as f32,
            sample_secs: sample_nanos.load(Ordering::Relaxed) as f64 / 1e9,
            extract_secs: extract_nanos.load(Ordering::Relaxed) as f64 / 1e9,
            train_secs,
            bytes_read: io.read_bytes,
            nodes_loaded: 0,
            nodes_reused: 0,
            prep_secs: 0.0,
            batch_latency: Default::default(),
            error: error.into_inner(),
        }
    }

    fn sample_only_epoch(&mut self, epoch: u64, max_batches: Option<usize>) -> Duration {
        let plan = BatchPlan::new(
            &self.ds.train_idx,
            self.cfg.batch_size,
            epoch,
            self.cfg.seed,
        );
        let batches = plan.num_batches().min(max_batches.unwrap_or(usize::MAX));
        let sampler = Arc::new(NeighborSampler::new(
            Arc::clone(&self.topo),
            self.cfg.fanouts.clone(),
        ));
        let cursor = AtomicUsize::new(0);
        let t0 = Instant::now();
        crossbeam::scope(|s| {
            for w in 0..self.cfg.num_workers.max(1) {
                let cursor = &cursor;
                let plan = &plan;
                let sampler = Arc::clone(&sampler);
                let seed = self.cfg.seed;
                s.builder()
                    .name(format!("pyg-sample-{w}"))
                    .spawn(move |_| {
                        telemetry::register_thread(ThreadClass::Cpu);
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= batches {
                                break;
                            }
                            let _busy = telemetry::state(State::Compute);
                            let _ = sampler.sample(i as u64, plan.batch(i), seed ^ epoch);
                        }
                    })
                    .expect("spawn sampler");
            }
        })
        .expect("sample scope");
        t0.elapsed()
    }

    fn evaluate(&mut self) -> f64 {
        evaluate_model(&self.model, &self.ds, &self.cfg.fanouts, 512)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnndrive_graph::DatasetSpec;
    use gnndrive_storage::{SimSsd, SsdProfile};

    fn setup(budget: u64) -> (Arc<Dataset>, Arc<MemoryGovernor>, Arc<PageCache>) {
        let ds = Arc::new(Dataset::build(
            DatasetSpec {
                name: "p".into(),
                num_nodes: 1500,
                num_edges: 10_000,
                feat_dim: 16,
                num_classes: 4,
                intra_prob: 0.8,
                feature_signal: 1.2,
                train_fraction: 0.2,
                seed: 13,
            },
            SimSsd::new(SsdProfile::instant()),
        ));
        let gov = MemoryGovernor::new(budget);
        let cache = PageCache::new(Arc::clone(&ds.ssd), Arc::clone(&gov));
        (ds, gov, cache)
    }

    #[test]
    fn trains_a_full_epoch_and_learns() {
        let (ds, gov, cache) = setup(256 * 1024 * 1024);
        let cfg = PygPlusConfig {
            num_workers: 2,
            fanouts: vec![4, 4],
            batch_size: 50,
            ..Default::default()
        };
        let mut sys = PygPlus::new(
            Arc::clone(&ds),
            ModelKind::GraphSage,
            16,
            cfg,
            GpuDevice::rtx3090(),
            gov,
            cache,
        );
        let acc0 = sys.evaluate();
        for e in 0..3 {
            let r = sys.train_epoch(e, None);
            assert!(r.error.is_none(), "{:?}", r.error);
            assert_eq!(r.batches, r.full_batches);
            assert!(r.loss.is_finite());
        }
        let acc1 = sys.evaluate();
        assert!(acc1 > acc0 || acc1 > 0.6, "{acc0} -> {acc1}");
    }

    #[test]
    fn device_oom_aborts_without_hanging_loaders() {
        // The trainer hits device OOM while loaders are blocked sending
        // into the full prefetch channel; the epoch must terminate (drain,
        // not break) and report the error.
        let (ds, gov, cache) = setup(512 * 1024 * 1024);
        let cfg = PygPlusConfig {
            num_workers: 3,
            prefetch: 2,
            fanouts: vec![6, 6],
            batch_size: 100,
            ..Default::default()
        };
        let device = Arc::new(gnndrive_device::GpuDevice {
            name: "tiny",
            memory: gnndrive_device::DeviceMemory::new(64), // nothing fits
            transfer: gnndrive_device::TransferEngine::new(
                gnndrive_device::TransferProfile::host_memcpy(),
            ),
            compute: gnndrive_device::ComputeModel::new(
                "tiny",
                gnndrive_telemetry::ThreadClass::Gpu,
                1e9,
                Duration::ZERO,
            ),
        });
        let mut sys = PygPlus::new(ds, ModelKind::GraphSage, 8, cfg, device, gov, cache);
        let r = sys.train_epoch(0, Some(8));
        assert!(r.error.unwrap().contains("device OOM"));
    }

    #[test]
    fn loader_oom_aborts_with_error() {
        // A budget so small the gathered features cannot be charged.
        let (ds, gov, cache) = setup(64 * 1024);
        let cfg = PygPlusConfig {
            num_workers: 1,
            fanouts: vec![8, 8],
            batch_size: 200,
            ..Default::default()
        };
        let mut sys = PygPlus::new(
            ds,
            ModelKind::GraphSage,
            8,
            cfg,
            GpuDevice::rtx3090(),
            gov,
            cache,
        );
        let r = sys.train_epoch(0, Some(4));
        assert!(r.error.is_some(), "expected OOM");
        assert!(r.error.unwrap().contains("OOM"));
    }
}
