//! Ginex (Park, Min & Lee, VLDB '22) — SSD-enabled training with a
//! provably-optimal in-memory feature cache.
//!
//! Mechanisms reproduced from the GNNDrive paper's description (§2, §3,
//! §5):
//!
//! * two *separate* host caches: a degree-ordered **neighbor cache** for
//!   topology and a **feature cache** for extracted rows — this is what
//!   spares Ginex most of PyG+'s memory contention;
//! * **superbatch** processing: sample a bundle of mini-batches up front,
//!   *spill the sampling results to SSD*, then run an **inspect** pass that
//!   computes the Belady-optimal (farthest-next-use) cache replacement
//!   schedule, and finally the extract+train loop reads the spilled lists
//!   back and applies the per-batch changesets — the extra I/O and the
//!   synchronous cache initialization the paper blames for Ginex's
//!   remaining I/O congestion;
//! * cache misses are loaded with **multi-threaded synchronous direct
//!   reads** (the paper configures I/O threads at 2× the physical cores);
//! * both caches are charged to the host-memory governor at construction —
//!   at an 8 GB (scaled) budget construction fails with OOM, matching
//!   Fig 9.

use crate::common::{read_feature_row_direct, seed_labels, BaselineMetrics};
use gnndrive_core::{evaluate_model, EpochReport, TrainingSystem};
use gnndrive_device::GpuDevice;
use gnndrive_graph::{Dataset, NodeId};
use gnndrive_nn::{build_model, GnnModel, ModelKind};
use gnndrive_sampling::{
    BatchPlan, MiniBatchSample, MmapTopo, NeighborCacheTopo, NeighborSampler, TopoReader,
};
use gnndrive_storage::{MemCharge, MemoryGovernor, OomError, PageCache, SECTOR_SIZE};
use gnndrive_telemetry::{self as telemetry, State, ThreadClass};
use gnndrive_tensor::{Adam, Matrix, Optimizer};
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Ginex knobs.
#[derive(Debug, Clone)]
pub struct GinexConfig {
    /// Mini-batches per superbatch (paper default 1500; scaled here).
    pub superbatch_size: usize,
    /// Neighbor-cache budget in bytes (paper default 6 GB; scaled).
    pub neighbor_cache_bytes: u64,
    /// Feature-cache budget in bytes (paper default 24 GB; scaled).
    pub feature_cache_bytes: u64,
    /// Threads for the synchronous miss-loading (paper: 2× cores).
    pub io_threads: usize,
    pub num_samplers: usize,
    pub fanouts: Vec<usize>,
    pub batch_size: usize,
    pub seed: u64,
}

impl Default for GinexConfig {
    fn default() -> Self {
        GinexConfig {
            superbatch_size: 25,
            neighbor_cache_bytes: 6 * 1024 * 1024,
            feature_cache_bytes: 24 * 1024 * 1024,
            io_threads: 8,
            num_samplers: 4,
            fanouts: vec![10, 10, 10],
            batch_size: 100,
            seed: 7,
        }
    }
}

/// Belady changeset for one mini-batch: which nodes to admit (loading from
/// SSD) and which cached nodes to drop first.
#[derive(Debug, Default, Clone)]
struct Changeset {
    load: Vec<NodeId>,
    evict: Vec<NodeId>,
    /// Nodes of this batch that do not fit the cache at all (working set
    /// larger than capacity): loaded transiently, never cached.
    transient: Vec<NodeId>,
}

/// The Belady planner's working state: cached nodes keyed by next use,
/// plus the lazy-deletion max-heap ordering evictions farthest-first.
struct BeladyState {
    cached: HashMap<NodeId, usize>,
    heap: BinaryHeap<(usize, NodeId)>,
}

/// See module docs.
pub struct Ginex {
    cfg: GinexConfig,
    ds: Arc<Dataset>,
    device: Arc<GpuDevice>,
    topo: Arc<dyn TopoReader>,
    model: GnnModel,
    opt: Adam,
    /// The feature cache: node → row. Capacity in rows.
    feature_cache: HashMap<NodeId, Vec<f32>>,
    feature_cache_slots: usize,
    metrics: BaselineMetrics,
    _charges: Vec<MemCharge>,
}

impl Ginex {
    /// Build Ginex; fails with OOM when the two caches do not fit the host
    /// budget (the paper's Ginex-at-8GB outcome).
    pub fn new(
        ds: Arc<Dataset>,
        model_kind: ModelKind,
        hidden: usize,
        cfg: GinexConfig,
        device: Arc<GpuDevice>,
        governor: Arc<MemoryGovernor>,
        page_cache: Arc<PageCache>,
    ) -> Result<Self, OomError> {
        let charges = vec![
            governor.charge(cfg.neighbor_cache_bytes)?,
            governor.charge(cfg.feature_cache_bytes)?,
        ];

        let mmap = MmapTopo::new(Arc::clone(&ds.indptr), page_cache, ds.indices_file);
        let topo: Arc<dyn TopoReader> =
            Arc::new(NeighborCacheTopo::build(mmap, cfg.neighbor_cache_bytes));
        let feature_cache_slots =
            (cfg.feature_cache_bytes as usize / (ds.spec.feat_dim * 4)).max(1);
        let model = build_model(
            model_kind,
            ds.spec.feat_dim,
            hidden,
            ds.spec.num_classes,
            cfg.fanouts.len(),
            cfg.seed,
        );
        Ok(Ginex {
            cfg,
            ds,
            device,
            topo,
            model,
            opt: Adam::new(0.003),
            feature_cache: HashMap::new(),
            feature_cache_slots,
            metrics: BaselineMetrics::new("ginex"),
            _charges: charges,
        })
    }

    /// The inspect pass: given the access sequence of a superbatch, compute
    /// the Belady (farthest next use) schedule starting from the current
    /// cache contents.
    fn inspect(&self, samples: &[MiniBatchSample]) -> Vec<Changeset> {
        // Occurrence lists per node, in batch order.
        let mut occurrences: HashMap<NodeId, Vec<usize>> = HashMap::new();
        for (b, s) in samples.iter().enumerate() {
            for &n in &s.input_nodes {
                occurrences.entry(n).or_default().push(b);
            }
        }
        let next_use_after = |node: NodeId, b: usize| -> usize {
            occurrences
                .get(&node)
                .and_then(|v| v.iter().find(|&&x| x > b))
                .copied()
                .unwrap_or(usize::MAX)
        };

        let mut cached: HashMap<NodeId, usize> = self
            .feature_cache
            .keys()
            .map(|&n| (n, next_use_after(n, usize::MAX - 1)))
            .collect();
        // Seed the pre-existing contents with their first use in this
        // superbatch (or never).
        for (n, nu) in cached.iter_mut() {
            *nu = occurrences
                .get(n)
                .and_then(|v| v.first())
                .copied()
                .unwrap_or(usize::MAX);
        }
        // Max-heap on next use (lazy deletion).
        let heap: BinaryHeap<(usize, NodeId)> = cached.iter().map(|(&n, &nu)| (nu, n)).collect();
        let mut belady = BeladyState { cached, heap };

        let mut changesets = Vec::with_capacity(samples.len());
        for (b, s) in samples.iter().enumerate() {
            let mut cs = Changeset::default();
            // Unique nodes of the batch (input_nodes is already deduped).
            let batch_set: Vec<NodeId> = s.input_nodes.clone();
            if batch_set.len() > self.feature_cache_slots {
                // Working set exceeds the whole cache: cache what fits,
                // stream the rest transiently.
                let (fit, overflow) = batch_set.split_at(self.feature_cache_slots);
                cs.transient = overflow.to_vec();
                self.admit_all(fit, b, &mut belady, &mut cs, &next_use_after);
            } else {
                self.admit_all(&batch_set, b, &mut belady, &mut cs, &next_use_after);
            }
            changesets.push(cs);
        }
        changesets
    }

    fn admit_all(
        &self,
        nodes: &[NodeId],
        b: usize,
        belady: &mut BeladyState,
        cs: &mut Changeset,
        next_use_after: &dyn Fn(NodeId, usize) -> usize,
    ) {
        let BeladyState { cached, heap } = belady;
        // Refresh next-use of hits, admit misses.
        for &n in nodes {
            let nu = next_use_after(n, b);
            if let Some(slot) = cached.get_mut(&n) {
                *slot = nu;
                heap.push((nu, n));
            } else {
                cs.load.push(n);
                cached.insert(n, nu);
                heap.push((nu, n));
            }
        }
        // Evict down to capacity, farthest-next-use first. The current
        // batch's own nodes are in use *now* and may not be evicted; they
        // are set aside and re-pushed with their true keys afterwards.
        let current: std::collections::HashSet<NodeId> = nodes.iter().copied().collect();
        let mut protected = Vec::new();
        while cached.len() > self.feature_cache_slots {
            match heap.pop() {
                Some((nu, n)) => {
                    if cached.get(&n) != Some(&nu) {
                        continue; // stale heap entry
                    }
                    if current.contains(&n) {
                        protected.push((nu, n));
                        continue;
                    }
                    cached.remove(&n);
                    cs.evict.push(n);
                }
                None => break,
            }
        }
        for e in protected {
            heap.push(e);
        }
    }

    /// Spill a superbatch's sampled node lists to SSD and return the
    /// scratch file (the extra I/O Ginex pays to enable the inspect pass).
    fn spill_samples(&self, samples: &[MiniBatchSample]) -> gnndrive_storage::FileHandle {
        let mut bytes = Vec::new();
        for s in samples {
            bytes.extend_from_slice(&(s.input_nodes.len() as u64).to_le_bytes());
            for &n in &s.input_nodes {
                bytes.extend_from_slice(&n.to_le_bytes());
            }
        }
        let padded = bytes.len().div_ceil(SECTOR_SIZE as usize) * SECTOR_SIZE as usize;
        bytes.resize(padded, 0);
        let file = self.ds.ssd.create_file(padded as u64);
        // Timed write: this is real extra I/O on Ginex's critical path.
        self.ds
            .ssd
            .write_blocking(file, 0, &bytes, true)
            .expect("spill write");
        file
    }

    /// Read the spilled lists back (Ginex re-reads them in the train loop).
    fn read_back_spill(
        &self,
        file: gnndrive_storage::FileHandle,
        samples: usize,
    ) -> Vec<Vec<NodeId>> {
        let mut buf = vec![0u8; file.len as usize];
        self.ds
            .ssd
            .read_blocking(file, 0, &mut buf, true)
            .expect("spill read");
        let mut out = Vec::with_capacity(samples);
        let mut pos = 0usize;
        for _ in 0..samples {
            let len = u64::from_le_bytes(buf[pos..pos + 8].try_into().unwrap()) as usize;
            pos += 8;
            let mut nodes = Vec::with_capacity(len);
            for _ in 0..len {
                nodes.push(u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()));
                pos += 4;
            }
            out.push(nodes);
        }
        out
    }

    /// Load `nodes` from SSD with `io_threads` synchronous workers;
    /// returns the rows in input order.
    fn parallel_sync_load(&self, nodes: &[NodeId]) -> Vec<(NodeId, Vec<f32>)> {
        let cursor = AtomicUsize::new(0);
        let results = gnndrive_sync::OrderedMutex::new(
            gnndrive_sync::LockRank::Pipeline,
            Vec::with_capacity(nodes.len()),
        );
        crossbeam::scope(|s| {
            for _ in 0..self.cfg.io_threads.max(1) {
                let cursor = &cursor;
                let results = &results;
                let ds = &self.ds;
                let dim = self.ds.spec.feat_dim;
                s.spawn(move |_| {
                    telemetry::register_thread(ThreadClass::Cpu);
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= nodes.len() {
                            break;
                        }
                        let row = read_feature_row_direct(&ds.ssd, ds.features_file, dim, nodes[i]);
                        results.lock().push((nodes[i], row));
                    }
                });
            }
        })
        .expect("sync load scope");
        results.into_inner()
    }

    fn sample_superbatch(
        &self,
        plan: &BatchPlan,
        range: std::ops::Range<usize>,
        epoch: u64,
    ) -> Vec<MiniBatchSample> {
        let sampler = Arc::new(NeighborSampler::new(
            Arc::clone(&self.topo),
            self.cfg.fanouts.clone(),
        ));
        let results = gnndrive_sync::OrderedMutex::new(
            gnndrive_sync::LockRank::Pipeline,
            Vec::with_capacity(range.len()),
        );
        let cursor = AtomicUsize::new(range.start);
        crossbeam::scope(|s| {
            for _ in 0..self.cfg.num_samplers.max(1) {
                let cursor = &cursor;
                let results = &results;
                let sampler = Arc::clone(&sampler);
                let plan = &plan;
                let end = range.end;
                let seed = self.cfg.seed;
                s.spawn(move |_| {
                    telemetry::register_thread(ThreadClass::Cpu);
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= end {
                            break;
                        }
                        let _busy = telemetry::state(State::Compute);
                        let sample = sampler.sample(i as u64, plan.batch(i), seed ^ epoch);
                        results.lock().push(sample);
                    }
                });
            }
        })
        .expect("superbatch sampling");
        let mut samples = results.into_inner();
        samples.sort_by_key(|s| s.batch_id);
        samples
    }
}

impl TrainingSystem for Ginex {
    fn name(&self) -> String {
        "Ginex".into()
    }

    fn train_epoch(&mut self, epoch: u64, max_batches: Option<usize>) -> EpochReport {
        telemetry::register_thread(ThreadClass::Cpu);
        let plan = BatchPlan::new(
            &self.ds.train_idx,
            self.cfg.batch_size,
            epoch,
            self.cfg.seed,
        );
        let full_batches = plan.num_batches();
        let batches = full_batches.min(max_batches.unwrap_or(usize::MAX));
        let io_before = self.ds.ssd.stats().snapshot();
        let t0 = Instant::now();
        let mut sample_secs = 0.0;
        let mut extract_secs = 0.0;
        let mut train_secs = 0.0;
        let mut loss_sum = 0.0f64;
        let mut nodes_loaded = 0u64;
        let mut nodes_reused = 0u64;
        let mut processed = 0usize;

        let mut start = 0usize;
        while start < batches {
            let end = (start + self.cfg.superbatch_size).min(batches);

            // Superbatch phase 1: sample everything, spill to SSD.
            let t = Instant::now();
            let samples = self.sample_superbatch(&plan, start..end, epoch);
            let spill = self.spill_samples(&samples);
            sample_secs += t.elapsed().as_secs_f64();

            // Phase 2: inspect (changeset computation).
            let t = Instant::now();
            let changesets = self.inspect(&samples);
            let spilled_lists = self.read_back_spill(spill, samples.len());
            extract_secs += t.elapsed().as_secs_f64();

            // Phase 3: extract (apply changesets) + train.
            for ((sample, cs), spilled) in samples.into_iter().zip(changesets).zip(spilled_lists) {
                debug_assert_eq!(spilled, sample.input_nodes);
                let t = Instant::now();
                for n in &cs.evict {
                    self.feature_cache.remove(n);
                }
                nodes_loaded += (cs.load.len() + cs.transient.len()) as u64;
                nodes_reused +=
                    (sample.input_nodes.len() - cs.load.len() - cs.transient.len()) as u64;
                let loaded = self.parallel_sync_load(&cs.load);
                for (n, row) in loaded {
                    self.feature_cache.insert(n, row);
                }
                let transient: HashMap<NodeId, Vec<f32>> =
                    self.parallel_sync_load(&cs.transient).into_iter().collect();
                // Gather the batch from the (now warm) cache.
                let dim = self.ds.spec.feat_dim;
                let mut input = Matrix::zeros(sample.input_nodes.len(), dim);
                for (i, n) in sample.input_nodes.iter().enumerate() {
                    let row = self
                        .feature_cache
                        .get(n)
                        .or_else(|| transient.get(n))
                        .expect("row resident after changeset");
                    input.row_mut(i).copy_from_slice(row);
                }
                extract_secs += t.elapsed().as_secs_f64();

                // Blocking H2D of the whole batch, then train.
                let t = Instant::now();
                let bytes = (input.rows() * input.cols() * 4) as u64;
                self.device.transfer.pay_blocking(bytes);
                let y = seed_labels(&self.ds, &sample.seeds);
                let flops = self.model.flops(&sample.blocks);
                let result = self
                    .device
                    .compute
                    .run(flops, || self.model.train_step(&sample.blocks, &input, &y));
                let mut params = self.model.params_mut();
                self.opt.step(&mut params);
                loss_sum += result.loss as f64;
                self.metrics
                    .batch_latency
                    .record(t.elapsed().as_nanos() as u64);
                self.metrics.batches.inc();
                train_secs += t.elapsed().as_secs_f64();
                processed += 1;
            }
            start = end;
        }

        let io = self.ds.ssd.stats().snapshot().delta_since(&io_before);
        self.metrics.epochs.inc();
        self.metrics.bytes_read.add(io.read_bytes);
        EpochReport {
            wall: t0.elapsed(),
            batches: processed,
            full_batches,
            failed_batches: 0,
            loss: (loss_sum / processed.max(1) as f64) as f32,
            sample_secs,
            extract_secs,
            train_secs,
            bytes_read: io.read_bytes,
            nodes_loaded,
            nodes_reused,
            prep_secs: 0.0,
            batch_latency: Default::default(),
            error: None,
        }
    }

    fn sample_only_epoch(&mut self, epoch: u64, max_batches: Option<usize>) -> Duration {
        let plan = BatchPlan::new(
            &self.ds.train_idx,
            self.cfg.batch_size,
            epoch,
            self.cfg.seed,
        );
        let batches = plan.num_batches().min(max_batches.unwrap_or(usize::MAX));
        let t0 = Instant::now();
        let mut start = 0usize;
        while start < batches {
            let end = (start + self.cfg.superbatch_size).min(batches);
            let samples = self.sample_superbatch(&plan, start..end, epoch);
            // The spill is part of Ginex's sample stage (the paper counts
            // it against sampling time).
            let _ = self.spill_samples(&samples);
            start = end;
        }
        t0.elapsed()
    }

    fn evaluate(&mut self) -> f64 {
        evaluate_model(&self.model, &self.ds, &self.cfg.fanouts, 512)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnndrive_graph::DatasetSpec;
    use gnndrive_storage::{SimSsd, SsdProfile};

    fn setup() -> (Arc<Dataset>, Arc<MemoryGovernor>, Arc<PageCache>) {
        let ds = Arc::new(Dataset::build(
            DatasetSpec {
                name: "g".into(),
                num_nodes: 1200,
                num_edges: 9000,
                feat_dim: 16,
                num_classes: 4,
                intra_prob: 0.8,
                feature_signal: 1.2,
                train_fraction: 0.25,
                seed: 19,
            },
            SimSsd::new(SsdProfile::instant()),
        ));
        let gov = MemoryGovernor::new(512 * 1024 * 1024);
        let cache = PageCache::new(Arc::clone(&ds.ssd), Arc::clone(&gov));
        (ds, gov, cache)
    }

    fn config() -> GinexConfig {
        GinexConfig {
            superbatch_size: 4,
            neighbor_cache_bytes: 64 * 1024,
            feature_cache_bytes: 40 * 1024,
            io_threads: 4,
            num_samplers: 2,
            fanouts: vec![4, 4],
            batch_size: 60,
            seed: 3,
        }
    }

    #[test]
    fn trains_and_learns() {
        let (ds, gov, cache) = setup();
        let mut sys = Ginex::new(
            Arc::clone(&ds),
            ModelKind::GraphSage,
            16,
            config(),
            GpuDevice::rtx3090(),
            gov,
            cache,
        )
        .unwrap();
        let acc0 = sys.evaluate();
        for e in 0..3 {
            let r = sys.train_epoch(e, None);
            assert!(r.error.is_none());
            assert_eq!(r.batches, r.full_batches);
            assert!(r.loss.is_finite());
            assert!(r.nodes_loaded > 0);
        }
        let acc1 = sys.evaluate();
        assert!(acc1 > acc0 || acc1 > 0.6, "{acc0} -> {acc1}");
    }

    #[test]
    fn cache_hits_grow_across_epochs() {
        let (ds, gov, cache) = setup();
        let mut cfg = config();
        cfg.feature_cache_bytes = 1 << 20; // roomy: high reuse expected
        let mut sys = Ginex::new(
            ds,
            ModelKind::GraphSage,
            8,
            cfg,
            GpuDevice::rtx3090(),
            gov,
            cache,
        )
        .unwrap();
        let r1 = sys.train_epoch(0, None);
        let r2 = sys.train_epoch(1, None);
        assert!(
            r2.nodes_reused > r1.nodes_reused / 2,
            "reuse should persist: {} then {}",
            r1.nodes_reused,
            r2.nodes_reused
        );
        assert!(r2.nodes_loaded < r1.nodes_loaded);
    }

    #[test]
    fn construction_ooms_on_small_budget() {
        let (ds, _gov, _cache) = setup();
        let gov = MemoryGovernor::new(16 * 1024); // smaller than the caches
        let cache = PageCache::new(Arc::clone(&ds.ssd), Arc::clone(&gov));
        let err = Ginex::new(
            ds,
            ModelKind::GraphSage,
            8,
            config(),
            GpuDevice::rtx3090(),
            gov,
            cache,
        )
        .err()
        .expect("must OOM");
        assert!(err.requested > 0);
    }

    #[test]
    fn belady_prefers_evicting_farthest_next_use() {
        let (ds, gov, cache) = setup();
        let mut cfg = config();
        // Cache of exactly 2 rows.
        cfg.feature_cache_bytes = (2 * ds.spec.feat_dim * 4) as u64;
        let sys = Ginex::new(
            ds,
            ModelKind::GraphSage,
            8,
            cfg,
            GpuDevice::rtx3090(),
            gov,
            cache,
        )
        .unwrap();
        let mk = |id: u64, nodes: &[u32]| MiniBatchSample {
            batch_id: id,
            seeds: vec![nodes[0]],
            input_nodes: nodes.to_vec(),
            blocks: vec![gnndrive_sampling::Block {
                num_src: nodes.len(),
                num_dst: 1,
                edge_src: vec![],
                edge_dst: vec![],
            }],
        };
        // Capacity 2. Batch 0 loads {1,2}. Batch 1 uses {1,3}: both are
        // needed now, so the only evictable node is 2 — Belady drops it
        // even though it returns in batch 2 (a forced eviction). Batch 2
        // must therefore reload 2, and the victim chosen then must be the
        // never-used-again node, not the cache's other resident.
        let samples = vec![mk(0, &[1, 2]), mk(1, &[1, 3]), mk(2, &[2, 3])];
        let cs = sys.inspect(&samples);
        assert_eq!(cs[0].load, vec![1, 2]);
        assert_eq!(cs[1].load, vec![3]);
        assert_eq!(cs[1].evict, vec![2]);
        assert_eq!(cs[2].load, vec![2]);
        // Batch 2 keeps 3 (in use) and evicts 1 (never used again).
        assert_eq!(cs[2].evict, vec![1]);
    }
}
