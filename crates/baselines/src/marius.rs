//! MariusGNN (Waleffe et al., EuroSys '23) — out-of-core training on a
//! partition buffer.
//!
//! Mechanisms reproduced from the GNNDrive paper's description (§2, §3,
//! §5.4):
//!
//! * the graph's features are split into `num_partitions` contiguous
//!   partitions on SSD; a host **partition buffer** holds
//!   `buffer_partitions` of them;
//! * each epoch begins with **data preparation** *on the critical path*:
//!   computing an ordering of buffer states (Marius's COMET; here a
//!   faithful greedy minimum-swap sequence) and preloading the initial
//!   buffer — large sequential reads whose time the paper's Table 2
//!   reports separately;
//! * during the epoch, training touches **only in-memory partitions**
//!   (sampling is restricted to buffered nodes — the accuracy risk the
//!   paper notes), so the train loop itself does almost no I/O; partition
//!   swaps between states are the remaining reads;
//! * the buffer and resident topology are charged to the host governor;
//!   when even the minimum buffer does not fit (MAG240M at 32 GB *and*
//!   128 GB scaled), construction fails with OOM — Table 2's outcome.

use crate::common::{seed_labels, BaselineMetrics};
use gnndrive_core::{evaluate_model, EpochReport, TrainingSystem};
use gnndrive_device::GpuDevice;
use gnndrive_graph::{Dataset, NodeId};
use gnndrive_nn::{build_model, GnnModel, ModelKind};
use gnndrive_sampling::{BatchPlan, NeighborSampler, TopoReader};
use gnndrive_storage::{MemCharge, MemoryGovernor, OomError};
use gnndrive_telemetry::{self as telemetry, ThreadClass};
use gnndrive_tensor::{Matrix, Optimizer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// MariusGNN knobs.
#[derive(Debug, Clone)]
pub struct MariusConfig {
    /// Number of feature partitions on disk.
    pub num_partitions: usize,
    /// Partitions resident in the host buffer at once (≥ 2).
    pub buffer_partitions: usize,
    pub fanouts: Vec<usize>,
    pub batch_size: usize,
    pub seed: u64,
}

impl Default for MariusConfig {
    fn default() -> Self {
        MariusConfig {
            num_partitions: 8,
            buffer_partitions: 3,
            fanouts: vec![10, 10, 10],
            batch_size: 100,
            seed: 7,
        }
    }
}

/// Restricts sampling to nodes whose partition is currently buffered —
/// Marius samples "solely with buffered partitions".
struct BufferedTopo {
    topo: Arc<gnndrive_graph::CscTopology>,
    in_buffer: Vec<bool>,
}

impl TopoReader for BufferedTopo {
    fn neighbors_into(&self, v: NodeId, out: &mut Vec<NodeId>) {
        out.extend(
            self.topo
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&n| self.in_buffer[n as usize]),
        );
    }

    fn degree(&self, v: NodeId) -> usize {
        self.topo.degree(v)
    }

    fn num_nodes(&self) -> usize {
        self.topo.num_nodes()
    }
}

/// See module docs.
pub struct MariusGnn {
    cfg: MariusConfig,
    ds: Arc<Dataset>,
    device: Arc<GpuDevice>,
    model: GnnModel,
    opt: gnndrive_tensor::Adam,
    /// Resident partitions: partition id → row-major feature block.
    buffer: HashMap<usize, Vec<f32>>,
    partition_nodes: usize,
    metrics: BaselineMetrics,
    _charges: Vec<MemCharge>,
}

impl MariusGnn {
    /// Build MariusGNN; fails with OOM when the minimum working set
    /// (buffer partitions + one staging partition + resident topology)
    /// exceeds the host budget.
    pub fn new(
        ds: Arc<Dataset>,
        model_kind: ModelKind,
        hidden: usize,
        cfg: MariusConfig,
        device: Arc<GpuDevice>,
        governor: Arc<MemoryGovernor>,
    ) -> Result<Self, OomError> {
        assert!(cfg.buffer_partitions >= 2);
        assert!(cfg.num_partitions >= cfg.buffer_partitions);
        let partition_nodes = ds.spec.num_nodes.div_ceil(cfg.num_partitions);
        let partition_bytes = (partition_nodes * ds.spec.feat_dim * 4) as u64;
        let mut charges = Vec::new();
        // Marius keeps the edge buckets of buffered partitions plus node
        // metadata resident; we charge the whole (small) topology.
        let topo_bytes = (ds.topology.num_edges() * 4 + ds.indptr.len() * 8) as u64;
        charges.push(governor.charge(topo_bytes)?);
        // Buffer + one in-flight staging partition used while swapping and
        // while materializing the partition ordering during data prep.
        charges.push(governor.charge(partition_bytes * (cfg.buffer_partitions as u64 + 1))?);

        let model = build_model(
            model_kind,
            ds.spec.feat_dim,
            hidden,
            ds.spec.num_classes,
            cfg.fanouts.len(),
            cfg.seed,
        );
        Ok(MariusGnn {
            cfg,
            ds,
            device,
            model,
            opt: gnndrive_tensor::Adam::new(0.003),
            buffer: HashMap::new(),
            partition_nodes,
            metrics: BaselineMetrics::new("marius"),
            _charges: charges,
        })
    }

    fn partition_of(&self, node: NodeId) -> usize {
        node as usize / self.partition_nodes
    }

    fn partition_range(&self, p: usize) -> std::ops::Range<usize> {
        let s = p * self.partition_nodes;
        let e = ((p + 1) * self.partition_nodes).min(self.ds.spec.num_nodes);
        s..e
    }

    /// Read one partition's feature block from SSD (timed, sequential,
    /// chunked reads — the I/O behind data preparation and swaps).
    fn load_partition(&self, p: usize) -> Vec<f32> {
        let range = self.partition_range(p);
        let dim = self.ds.spec.feat_dim;
        let row_bytes = dim * 4;
        let total = range.len() * row_bytes;
        let mut bytes = vec![0u8; total];
        let chunk = 1 << 20;
        let base = (range.start * row_bytes) as u64;
        let mut off = 0usize;
        while off < total {
            let n = chunk.min(total - off);
            self.ds
                .ssd
                .read_blocking(
                    self.ds.features_file,
                    base + off as u64,
                    &mut bytes[off..off + n],
                    false,
                )
                .expect("partition read");
            off += n;
        }
        bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    /// The COMET-style ordering: a sequence of buffer states, each swapping
    /// a single partition, visiting every partition at least once while
    /// minimizing swaps (greedy: slide new partitions into a round-robin
    /// victim slot). The *computation* is cheap; the paper's cost is the
    /// preloading, which [`MariusGnn::prepare`] performs.
    fn ordering(&self, epoch: u64) -> Vec<Vec<usize>> {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ epoch.wrapping_mul(0x9E37_79B9));
        let mut parts: Vec<usize> = (0..self.cfg.num_partitions).collect();
        // Randomize the visit order per epoch (Marius reshuffles partition
        // order between epochs to preserve SGD randomness).
        for i in (1..parts.len()).rev() {
            let j = rng.gen_range(0..=i);
            parts.swap(i, j);
        }
        let b = self.cfg.buffer_partitions;
        let mut states = Vec::new();
        let mut state: Vec<usize> = parts[..b].to_vec();
        states.push(state.clone());
        let mut victim = 0usize;
        for &p in &parts[b..] {
            state[victim] = p;
            victim = (victim + 1) % b;
            states.push(state.clone());
        }
        states
    }

    /// Data preparation: compute the ordering and preload the first buffer
    /// state. Returns (states, prep time) — Table 2's "Data Preparation".
    fn prepare(&mut self, epoch: u64) -> (Vec<Vec<usize>>, Duration) {
        let t0 = Instant::now();
        let states = self.ordering(epoch);
        // Marius materializes the epoch's partition order by shuffling the
        // on-disk edge buckets into the new sequence: a read+write pass
        // over the topology, on the critical path.
        let topo_bytes = self.ds.indices_file.len;
        let chunk = 1 << 20;
        let mut buf = vec![0u8; chunk.min(topo_bytes as usize)];
        let mut off = 0u64;
        while off < topo_bytes {
            let n = (chunk as u64).min(topo_bytes - off) as usize;
            self.ds
                .ssd
                .read_blocking(self.ds.indices_file, off, &mut buf[..n], false)
                .expect("bucket read");
            self.ds
                .ssd
                .write_blocking(self.ds.indices_file, off, &buf[..n], false)
                .expect("bucket write");
            off += n as u64;
        }
        self.buffer.clear();
        for &p in &states[0] {
            let block = self.load_partition(p);
            self.buffer.insert(p, block);
        }
        (states, t0.elapsed())
    }

    fn in_buffer_mask(&self) -> Vec<bool> {
        let mut mask = vec![false; self.ds.spec.num_nodes];
        for &p in self.buffer.keys() {
            for i in self.partition_range(p) {
                mask[i] = true;
            }
        }
        mask
    }

    fn gather_from_buffer(&self, nodes: &[NodeId]) -> Matrix {
        let dim = self.ds.spec.feat_dim;
        let mut out = Matrix::zeros(nodes.len(), dim);
        for (i, &n) in nodes.iter().enumerate() {
            let p = self.partition_of(n);
            let block = self.buffer.get(&p).expect("node's partition buffered");
            let local = n as usize - p * self.partition_nodes;
            out.row_mut(i)
                .copy_from_slice(&block[local * dim..(local + 1) * dim]);
        }
        out
    }
}

impl TrainingSystem for MariusGnn {
    fn name(&self) -> String {
        "MariusGNN".into()
    }

    fn train_epoch(&mut self, epoch: u64, max_batches: Option<usize>) -> EpochReport {
        telemetry::register_thread(ThreadClass::Cpu);
        let io_before = self.ds.ssd.stats().snapshot();
        let t0 = Instant::now();
        let (states, prep) = self.prepare(epoch);
        let cap = max_batches.unwrap_or(usize::MAX);
        let mut sample_secs = 0.0;
        let mut extract_secs = 0.0;
        let mut train_secs = 0.0;
        let mut loss_sum = 0.0f64;
        let mut processed = 0usize;
        // Full-epoch batch count for extrapolation.
        let full_batches = self.ds.train_idx.len().div_ceil(self.cfg.batch_size);
        let mut trained_partition = vec![false; self.cfg.num_partitions];

        'states: for (si, state) in states.iter().enumerate() {
            if si > 0 {
                // Swap: load the partition that entered this state.
                let entering: Vec<usize> = state
                    .iter()
                    .copied()
                    .filter(|p| !self.buffer.contains_key(p))
                    .collect();
                let leaving: Vec<usize> = self
                    .buffer
                    .keys()
                    .copied()
                    .filter(|p| !state.contains(p))
                    .collect();
                for p in leaving {
                    self.buffer.remove(&p);
                }
                for p in entering {
                    let block = self.load_partition(p);
                    self.buffer.insert(p, block);
                }
            }
            let mask = self.in_buffer_mask();
            let topo: Arc<dyn TopoReader> = Arc::new(BufferedTopo {
                topo: Arc::clone(&self.ds.topology),
                in_buffer: mask.clone(),
            });
            let sampler = NeighborSampler::new(topo, self.cfg.fanouts.clone());

            // Train the nodes of partitions newly covered by this state.
            let mut seeds: Vec<NodeId> = Vec::new();
            for &p in state {
                if !trained_partition[p] {
                    trained_partition[p] = true;
                    seeds.extend(
                        self.ds
                            .train_idx
                            .iter()
                            .copied()
                            .filter(|&n| self.partition_of(n) == p),
                    );
                }
            }
            let plan = BatchPlan::new(
                &seeds,
                self.cfg.batch_size,
                epoch,
                self.cfg.seed ^ si as u64,
            );
            for i in 0..plan.num_batches() {
                if processed >= cap {
                    break 'states;
                }
                let t = Instant::now();
                let sample = sampler.sample(i as u64, plan.batch(i), self.cfg.seed ^ epoch);
                sample_secs += t.elapsed().as_secs_f64();

                let t = Instant::now();
                let input = self.gather_from_buffer(&sample.input_nodes);
                extract_secs += t.elapsed().as_secs_f64();

                let t = Instant::now();
                let bytes = (input.rows() * input.cols() * 4) as u64;
                self.device.transfer.pay_blocking(bytes);
                let y = seed_labels(&self.ds, &sample.seeds);
                let flops = self.model.flops(&sample.blocks);
                let result = self
                    .device
                    .compute
                    .run(flops, || self.model.train_step(&sample.blocks, &input, &y));
                let mut params = self.model.params_mut();
                self.opt.step(&mut params);
                loss_sum += result.loss as f64;
                self.metrics
                    .batch_latency
                    .record(t.elapsed().as_nanos() as u64);
                self.metrics.batches.inc();
                train_secs += t.elapsed().as_secs_f64();
                processed += 1;
            }
        }

        let io = self.ds.ssd.stats().snapshot().delta_since(&io_before);
        self.metrics.epochs.inc();
        self.metrics.bytes_read.add(io.read_bytes);
        EpochReport {
            wall: t0.elapsed(),
            batches: processed,
            full_batches,
            failed_batches: 0,
            loss: (loss_sum / processed.max(1) as f64) as f32,
            sample_secs,
            extract_secs,
            train_secs,
            bytes_read: io.read_bytes,
            nodes_loaded: 0,
            nodes_reused: 0,
            prep_secs: prep.as_secs_f64(),
            batch_latency: Default::default(),
            error: None,
        }
    }

    fn sample_only_epoch(&mut self, epoch: u64, max_batches: Option<usize>) -> Duration {
        // Sampling in Marius requires the buffer; include its preparation.
        let (states, _prep) = self.prepare(epoch);
        let cap = max_batches.unwrap_or(usize::MAX);
        let t0 = Instant::now();
        let mask = self.in_buffer_mask();
        let topo: Arc<dyn TopoReader> = Arc::new(BufferedTopo {
            topo: Arc::clone(&self.ds.topology),
            in_buffer: mask,
        });
        let sampler = NeighborSampler::new(topo, self.cfg.fanouts.clone());
        let seeds: Vec<NodeId> = self
            .ds
            .train_idx
            .iter()
            .copied()
            .filter(|&n| states[0].contains(&self.partition_of(n)))
            .collect();
        let plan = BatchPlan::new(&seeds, self.cfg.batch_size, epoch, self.cfg.seed);
        for i in 0..plan.num_batches().min(cap) {
            let _ = sampler.sample(i as u64, plan.batch(i), self.cfg.seed ^ epoch);
        }
        t0.elapsed()
    }

    fn evaluate(&mut self) -> f64 {
        evaluate_model(&self.model, &self.ds, &self.cfg.fanouts, 512)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnndrive_graph::DatasetSpec;
    use gnndrive_storage::{SimSsd, SsdProfile};

    fn dataset() -> Arc<Dataset> {
        Arc::new(Dataset::build(
            DatasetSpec {
                name: "m".into(),
                num_nodes: 1600,
                num_edges: 12_000,
                feat_dim: 16,
                num_classes: 4,
                intra_prob: 0.8,
                feature_signal: 1.2,
                train_fraction: 0.25,
                seed: 23,
            },
            SimSsd::new(SsdProfile::instant()),
        ))
    }

    fn config() -> MariusConfig {
        MariusConfig {
            num_partitions: 8,
            buffer_partitions: 3,
            fanouts: vec![4, 4],
            batch_size: 50,
            seed: 3,
        }
    }

    #[test]
    fn trains_every_partition_once_per_epoch() {
        let ds = dataset();
        let mut sys = MariusGnn::new(
            Arc::clone(&ds),
            ModelKind::GraphSage,
            16,
            config(),
            GpuDevice::rtx3090(),
            MemoryGovernor::unlimited(),
        )
        .unwrap();
        let r = sys.train_epoch(0, None);
        assert!(r.error.is_none());
        assert!(r.prep_secs >= 0.0);
        // Every training node is covered exactly once, so processed batch
        // count ≈ full count (partition-chunking can add a few partial
        // batches).
        assert!(r.batches >= r.full_batches);
        assert!(r.batches <= r.full_batches + config().num_partitions);
        assert!(r.loss.is_finite());
    }

    #[test]
    fn learns_despite_restricted_sampling() {
        let ds = dataset();
        let mut sys = MariusGnn::new(
            Arc::clone(&ds),
            ModelKind::GraphSage,
            16,
            config(),
            GpuDevice::rtx3090(),
            MemoryGovernor::unlimited(),
        )
        .unwrap();
        let acc0 = sys.evaluate();
        for e in 0..3 {
            sys.train_epoch(e, None);
        }
        let acc1 = sys.evaluate();
        assert!(acc1 > acc0 || acc1 > 0.5, "{acc0} -> {acc1}");
    }

    #[test]
    fn ordering_visits_all_partitions_with_single_swaps() {
        let ds = dataset();
        let sys = MariusGnn::new(
            ds,
            ModelKind::GraphSage,
            8,
            config(),
            GpuDevice::rtx3090(),
            MemoryGovernor::unlimited(),
        )
        .unwrap();
        let states = sys.ordering(0);
        assert_eq!(states.len(), 8 - 3 + 1);
        let mut seen = [false; 8];
        for st in &states {
            assert_eq!(st.len(), 3);
            for &p in st {
                seen[p] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        // Consecutive states differ by exactly one partition.
        for w in states.windows(2) {
            let diff = w[1].iter().filter(|p| !w[0].contains(p)).count();
            assert_eq!(diff, 1);
        }
    }

    #[test]
    fn construction_ooms_when_buffer_exceeds_budget() {
        let ds = dataset();
        // Features: 1600×16×4 = 100 KiB; partition ≈ 12.5 KiB; buffer of
        // 4 × 12.5 KiB + topology ≈ 50 KiB + 60 KiB > 64 KiB budget.
        let gov = MemoryGovernor::new(64 * 1024);
        let err = MariusGnn::new(
            ds,
            ModelKind::GraphSage,
            8,
            config(),
            GpuDevice::rtx3090(),
            gov,
        )
        .err()
        .expect("must OOM");
        assert!(err.requested > 0);
    }

    #[test]
    fn sampling_is_restricted_to_buffered_partitions() {
        let ds = dataset();
        let sys = MariusGnn::new(
            Arc::clone(&ds),
            ModelKind::GraphSage,
            8,
            config(),
            GpuDevice::rtx3090(),
            MemoryGovernor::unlimited(),
        )
        .unwrap();
        let mut mask = vec![false; ds.spec.num_nodes];
        for i in sys.partition_range(2) {
            mask[i] = true;
        }
        let topo = BufferedTopo {
            topo: Arc::clone(&ds.topology),
            in_buffer: mask.clone(),
        };
        let mut out = Vec::new();
        for v in 0..200u32 {
            out.clear();
            topo.neighbors_into(v, &mut out);
            assert!(out.iter().all(|&n| mask[n as usize]));
        }
    }
}
