//! The three state-of-the-art disk-based GNN training systems the paper
//! compares against, re-implemented at the systems level on the identical
//! storage / device / model substrates so every timing difference comes
//! from their *mechanisms*, not from implementation accidents:
//!
//! * [`PygPlus`] — the mmap extension of PyG (Park et al., 2022): both
//!   topology and features are memory-mapped, so the sample and extract
//!   stages compete for the shared OS page cache, and every feature miss
//!   is a synchronous blocking read on the critical path.
//! * [`Ginex`] — superbatch processing with a degree-ordered neighbor
//!   cache, a Belady (provably optimal) feature cache computed by an
//!   *inspect* pass, and sampling results spilled to / re-read from SSD —
//!   the extra I/O the paper calls out.
//! * [`MariusGnn`] — partition-buffer training: an epoch-level *data
//!   preparation* phase orders partitions and preloads the buffer, then
//!   training samples only within in-memory partitions, swapping
//!   partitions on a schedule.
//!
//! All three implement
//! [`TrainingSystem`](gnndrive_core::TrainingSystem).

pub mod common;
pub mod ginex;
pub mod marius;
pub mod pygplus;

pub use ginex::{Ginex, GinexConfig};
pub use marius::{MariusConfig, MariusGnn};
pub use pygplus::{PygPlus, PygPlusConfig};
