//! Helpers shared by the baseline systems.

use gnndrive_graph::{Dataset, NodeId};
use gnndrive_storage::{FileHandle, PageCache, SimSsd};
use gnndrive_telemetry as telemetry;
use gnndrive_tensor::Matrix;

/// Registry handles every baseline reports into, under its own scope
/// prefix (`pygplus.*`, `ginex.*`, `marius.*`). A single run comparing
/// systems thus yields one metrics snapshot in which each system's
/// series are distinguishable from GNNDrive's (`pipeline.*`) and from
/// each other.
pub struct BaselineMetrics {
    pub epochs: telemetry::Counter,
    pub batches: telemetry::Counter,
    pub bytes_read: telemetry::Counter,
    pub batch_latency: telemetry::HistogramHandle,
}

impl BaselineMetrics {
    pub fn new(prefix: &str) -> Self {
        let scope = telemetry::Scope::new(prefix);
        BaselineMetrics {
            epochs: scope.counter("epochs"),
            batches: scope.counter("batches_trained"),
            bytes_read: scope.counter("bytes_read"),
            batch_latency: scope.histogram_ns("batch_latency"),
        }
    }
}

/// Gather the feature rows of `nodes` through the OS page-cache model
/// (buffered, synchronous — the memory-mapped feature access of PyG+).
pub fn gather_features_mmap(
    cache: &PageCache,
    features_file: FileHandle,
    dim: usize,
    nodes: &[NodeId],
) -> Matrix {
    let row_bytes = dim * 4;
    let mut out = Matrix::zeros(nodes.len(), dim);
    let mut buf = vec![0u8; row_bytes];
    for (i, &v) in nodes.iter().enumerate() {
        cache.read(features_file, (v as u64) * row_bytes as u64, &mut buf);
        for (c, chunk) in buf.chunks_exact(4).enumerate() {
            out.set(i, c, f32::from_le_bytes(chunk.try_into().unwrap()));
        }
    }
    out
}

/// Read one feature row synchronously with direct I/O (sector-aligned
/// window), used by Ginex's cache-miss path.
pub fn read_feature_row_direct(
    ssd: &SimSsd,
    features_file: FileHandle,
    dim: usize,
    node: NodeId,
) -> Vec<f32> {
    let row_bytes = (dim * 4) as u64;
    let off = node as u64 * row_bytes;
    let start = off / 512 * 512;
    let end = (off + row_bytes).div_ceil(512) * 512;
    let mut buf = vec![0u8; (end - start) as usize];
    ssd.read_blocking(features_file, start, &mut buf, true)
        .expect("feature row read");
    let s = (off - start) as usize;
    buf[s..s + row_bytes as usize]
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Labels of a seed list as class indices.
pub fn seed_labels(ds: &Dataset, seeds: &[NodeId]) -> Vec<usize> {
    seeds
        .iter()
        .map(|&s| ds.labels[s as usize] as usize)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnndrive_graph::DatasetSpec;
    use gnndrive_storage::{MemoryGovernor, SsdProfile};
    use std::sync::Arc;

    fn ds() -> Dataset {
        Dataset::build(
            DatasetSpec {
                name: "c".into(),
                num_nodes: 100,
                num_edges: 600,
                feat_dim: 24,
                num_classes: 3,
                intra_prob: 0.5,
                feature_signal: 1.0,
                train_fraction: 0.2,
                seed: 9,
            },
            SimSsd::new(SsdProfile::instant()),
        )
    }

    #[test]
    fn mmap_gather_matches_ground_truth() {
        let ds = ds();
        let cache = PageCache::new(Arc::clone(&ds.ssd), MemoryGovernor::unlimited());
        let m = gather_features_mmap(&cache, ds.features_file, 24, &[3, 50, 99]);
        assert_eq!(m.row(0), ds.peek_feature_row(3).as_slice());
        assert_eq!(m.row(2), ds.peek_feature_row(99).as_slice());
    }

    #[test]
    fn direct_row_read_matches_ground_truth() {
        let ds = ds();
        for node in [0u32, 7, 99] {
            let row = read_feature_row_direct(&ds.ssd, ds.features_file, 24, node);
            assert_eq!(row, ds.peek_feature_row(node), "node {node}");
        }
    }
}
