//! Criterion micro-benchmarks for the hot data structures and kernels:
//! the feature-buffer manager's plan/release cycle, the LRU list, the page
//! cache hit path, the io_uring-style ring (on a zero-latency device, so
//! the measured cost is the software overhead), neighborhood sampling, and
//! the GNN layer kernels.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gnndrive_core::{FeatureBufferManager, GnnDriveConfig};
use gnndrive_device::FeatureSlab;
use gnndrive_graph::{generate_graph, CscTopology};
use gnndrive_nn::{build_model, ModelKind};
use gnndrive_sampling::{InMemTopo, NeighborSampler};
use gnndrive_storage::{IoRing, LruList, MemoryGovernor, PageCache, SimSsd, SsdProfile};
use gnndrive_tensor::Matrix;
use std::hint::black_box;
use std::sync::Arc;

fn bench_lru(c: &mut Criterion) {
    c.bench_function("lru/push_touch_pop_1k", |b| {
        b.iter_batched(
            || LruList::new(1024),
            |mut l| {
                for s in 0..1024u32 {
                    l.push_back(s);
                }
                for s in (0..1024u32).step_by(3) {
                    l.touch(s);
                }
                while l.pop_front().is_some() {}
                black_box(l.len())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_feature_buffer(c: &mut Criterion) {
    let slab = Arc::new(FeatureSlab::new(4096, 8));
    let fb = FeatureBufferManager::new(slab, 100_000, &GnnDriveConfig::default());
    let nodes: Vec<u32> = (0..1024u32).map(|i| i * 7 % 100_000).collect();
    c.bench_function("feature_buffer/plan_publish_release_1k", |b| {
        b.iter(|| {
            let plan = fb.plan_batch(&nodes);
            for &(_, n) in &plan.to_load {
                fb.publish(n);
            }
            fb.release(&nodes);
            black_box(plan.aliases.len())
        })
    });
}

fn bench_pagecache(c: &mut Criterion) {
    let ssd = SimSsd::new(SsdProfile::instant());
    let f = ssd.create_file(1 << 22);
    let cache = PageCache::new(ssd, MemoryGovernor::unlimited());
    // Warm.
    let mut buf = vec![0u8; 4096];
    for p in 0..1024u64 {
        cache.read(f, p * 4096, &mut buf);
    }
    c.bench_function("pagecache/hit_read_512B", |b| {
        let mut small = vec![0u8; 512];
        let mut p = 0u64;
        b.iter(|| {
            cache.read(f, (p % 1024) * 4096 + 128, &mut small);
            p += 1;
            black_box(small[0])
        })
    });
}

fn bench_ring(c: &mut Criterion) {
    let ssd = SimSsd::new(SsdProfile::instant());
    let f = ssd.create_file(1 << 22);
    c.bench_function("ring/submit_reap_64x512B", |b| {
        b.iter(|| {
            let mut ring = IoRing::new(Arc::clone(&ssd), 64, true);
            for i in 0..64u64 {
                ring.prepare_read(f, (i * 512) % (1 << 22), 512, i).unwrap();
            }
            let mut n = 0;
            ring.drain(|c| {
                c.result.unwrap();
                n += 1;
            })
            .unwrap();
            black_box(n)
        })
    });
}

fn bench_sampler(c: &mut Criterion) {
    let g = generate_graph(20_000, 200_000, 8, 0.7, 3);
    let topo: Arc<CscTopology> = Arc::new(g.topology);
    let sampler = NeighborSampler::new(Arc::new(InMemTopo::new(topo)), vec![4, 4, 4]);
    let seeds: Vec<u32> = (0..32u32).map(|i| i * 601 % 20_000).collect();
    c.bench_function("sampler/3hop_fanout4_batch32", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(sampler.sample(i, &seeds, 9).input_nodes.len())
        })
    });
}

fn bench_nn(c: &mut Criterion) {
    let g = generate_graph(5_000, 50_000, 8, 0.7, 4);
    let topo: Arc<CscTopology> = Arc::new(g.topology);
    let sampler = NeighborSampler::new(Arc::new(InMemTopo::new(topo)), vec![4, 4]);
    let seeds: Vec<u32> = (0..32u32).collect();
    let sample = sampler.sample(0, &seeds, 1);
    let dim = 64;
    let input = Matrix::from_fn(sample.input_nodes.len(), dim, |r, cix| {
        ((r * 13 + cix * 7) % 11) as f32 * 0.1 - 0.5
    });
    let labels: Vec<usize> = sample.seeds.iter().map(|&s| (s % 8) as usize).collect();
    for kind in [ModelKind::GraphSage, ModelKind::Gcn, ModelKind::Gat] {
        let mut model = build_model(kind, dim, 16, 8, 2, 5);
        c.bench_function(&format!("nn/train_step_{}", kind.name()), |b| {
            b.iter(|| black_box(model.train_step(&sample.blocks, &input, &labels).loss))
        });
    }
}

fn bench_matmul(c: &mut Criterion) {
    let a = Matrix::from_fn(256, 128, |r, cix| ((r + cix) % 7) as f32 * 0.3);
    let bm = Matrix::from_fn(128, 64, |r, cix| ((r * 3 + cix) % 5) as f32 * 0.2);
    c.bench_function("tensor/matmul_256x128x64", |b| {
        b.iter(|| black_box(a.matmul(&bm).get(0, 0)))
    });
}

fn quick() -> Criterion {
    // Small sample counts: these run on a 1-core container alongside the
    // simulation's own worker threads.
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(900))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_lru,
        bench_feature_buffer,
        bench_pagecache,
        bench_ring,
        bench_sampler,
        bench_nn,
        bench_matmul
}
criterion_main!(benches);
