//! Machine-readable run-report artifacts.
//!
//! Every repro binary prints text tables for eyeballing; this module lets
//! the same binaries also drop a [`RunReport`] JSON artifact (metrics
//! registry snapshot, per-stage latency percentiles, monitor utilization
//! series) that tooling can diff across runs without scraping text.
//!
//! Reports land in `$REPRO_REPORT_DIR` (default `results/reports`), one
//! file per report name. Artifact writing must never fail a run: errors
//! are printed and swallowed.

use crate::Scenario;
use gnndrive_telemetry::{self as telemetry, RunReport, SeriesPoint};
use std::path::PathBuf;

/// The four GNNDrive pipeline stages, in batch-lifecycle order. Their
/// per-batch latencies live in the registry as `pipeline.<stage>`.
pub const PIPELINE_STAGES: [&str; 4] = ["sample", "extract", "train", "release"];

/// Where run reports land: `$REPRO_REPORT_DIR` or `results/reports`.
pub fn report_dir() -> PathBuf {
    std::env::var_os("REPRO_REPORT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results/reports"))
}

/// A file-stem-safe slug of a system/figure name ("PyG+" → "pygplus").
pub fn slug(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            '+' => out.push_str("plus"),
            c if c.is_ascii_alphanumeric() => out.push(c.to_ascii_lowercase()),
            _ => out.push('_'),
        }
    }
    out
}

/// One-line scenario description embedded in every artifact.
pub fn scenario_desc(sc: &Scenario) -> String {
    format!(
        "{} scale {} dim {} model {} hidden {} mem {}GB batch {} fanouts {:?}",
        sc.dataset.name(),
        sc.scale,
        sc.dim,
        sc.model.name(),
        sc.hidden,
        sc.memory_gb,
        sc.batch_size,
        sc.fanouts
    )
}

/// Assemble a report from the current registry state: metrics snapshot,
/// the monitor's utilization series, and per-stage latency percentiles
/// for every pipeline stage that recorded anything this run.
pub fn collect_report(name: &str, scenario: &str, series: Vec<SeriesPoint>) -> RunReport {
    let mut r = RunReport::new(name);
    r.scenario = scenario.to_string();
    r.metrics = telemetry::snapshot_metrics();
    r.series = series;
    for stage in PIPELINE_STAGES {
        let h = telemetry::histogram_ns(&format!("pipeline.{stage}")).merged();
        if h.count() > 0 {
            r.add_stage(stage, &h);
        }
    }
    r
}

/// Write `report` under [`report_dir`], printing the artifact path (or
/// the error — reports are best-effort and never fail the run).
pub fn write_report(report: &RunReport) -> Option<PathBuf> {
    match report.write_to_dir(&report_dir()) {
        Ok(path) => {
            println!("report: {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("report {}: not written: {e}", report.name);
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slug_is_file_stem_safe() {
        assert_eq!(slug("PyG+"), "pygplus");
        assert_eq!(slug("GNNDrive-GPU"), "gnndrive_gpu");
        assert_eq!(slug("MariusGNN"), "mariusgnn");
    }
}
