//! `cache_sweep` — trace-driven Belady vs LRU page-cache sweep (the
//! Fig-9-style memory-capacity comparison, applied to replacement policy).
//!
//! The pinned pipeline: pre-sample one epoch of the Twitter analog under a
//! fixed seed (`gnndrive_sampling::presample_epoch`), lower the batch
//! schedule to the exact feature-page access sequence, and replay that
//! sequence through a [`PageCache`] at several resident-page budgets —
//! once under [`LruPolicy`], once under the trace-driven [`BeladyPolicy`],
//! and once under Belady over the hot-first packed layout
//! (`gnndrive_graph::pack_features`). Per budget and policy the sweep
//! records hits, misses, hit rate, and replay wall time into a
//! schema-versioned `BENCH_cache_sweep.json`; the trace itself is saved as
//! `TRACE_cache_sweep.bin` (see `gnndrive_storage::AccessTrace`).
//!
//! Because replay is single-threaded and the policies are deterministic,
//! every hit count is a pure function of the pinned seed — the CI gate
//! compares them exactly (epoch *time* is only compared within one run,
//! Belady against LRU at the tightest budget, where it is miss-dominated).

use crate::scenario::{dataset_for, EnvKnobs, Scenario};
use crate::trajectory::Regression;
use crate::Row;
use gnndrive_graph::{pack_features, MiniDataset};
use gnndrive_sampling::{presample_epoch, InMemTopo, PresampleResult};
use gnndrive_storage::{
    pages_for_rows, AccessTrace, BeladyPolicy, EvictionPolicy, FileHandle, LruPolicy,
    MemoryGovernor, PageCache, SimSsd, SsdProfile,
};
use gnndrive_telemetry::Json;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Version of the `BENCH_cache_sweep.json` document layout. Bump when a
/// field changes meaning; [`compare_cache_sweep`] refuses to diff across
/// versions.
pub const CACHE_SWEEP_SCHEMA_VERSION: u64 = 1;

/// Pinned schedule seed and epoch — the whole point of the sweep is that
/// the access sequence (and so every hit count) is reproducible.
pub const SWEEP_SEED: u64 = 0xCA5E;
pub const SWEEP_EPOCH: u64 = 0;

/// Mini-batches replayed per epoch (pinned, like the trajectory suite's
/// batch count — the artifact must be comparable across machines).
pub const SWEEP_BATCHES: usize = 24;

/// Resident-page budgets, as fractions of the trace's distinct pages.
/// Three points spanning starved → comfortable, all strictly below 1.0 so
/// eviction pressure is real at every point.
pub const SWEEP_BUDGET_FRACTIONS: [f64; 3] = [0.10, 0.25, 0.50];

/// Policies reported per budget, in table order. `lru` and `belady`
/// replay the natural-layout trace; `belady_packed` replays the same
/// schedule lowered onto the hot-first packed feature file.
pub const SWEEP_POLICIES: [&str; 3] = ["lru", "belady", "belady_packed"];

/// The pinned experimental point: the trajectory suite's Twitter analog
/// with two-hop fanouts and small batches, over `profile`.
fn sweep_scenario(profile: SsdProfile) -> Scenario {
    let knobs = EnvKnobs {
        scale: 0.05,
        max_batches: Some(SWEEP_BATCHES),
        epochs: 1,
        full: false,
    };
    Scenario {
        batch_size: 16,
        fanouts: vec![3, 3],
        ssd: profile,
        ..Scenario::default_for(MiniDataset::Twitter, &knobs)
    }
}

/// One policy's replay at one budget.
#[derive(Debug, Clone)]
pub struct PolicyResult {
    pub policy: &'static str,
    pub hits: u64,
    pub misses: u64,
    pub epoch_secs: f64,
}

impl PolicyResult {
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Everything one sweep produces: the JSON document and the canonical
/// (natural-layout) trace artifact.
pub struct SweepOutcome {
    pub doc: Json,
    pub trace: AccessTrace,
}

/// Lower one pre-sampled epoch to a page-access trace over `file`:
/// per batch, the sorted distinct feature rows (through `row_of`) become
/// their covering pages via [`pages_for_rows`].
fn trace_of_schedule(
    pre: &PresampleResult,
    file: FileHandle,
    row_bytes: u64,
    row_of: impl Fn(u32) -> u64,
) -> AccessTrace {
    let mut trace = AccessTrace::new(pre.seed, pre.epoch);
    for batch in &pre.batches {
        let mut rows: Vec<u64> = batch.iter().map(|&n| row_of(n)).collect();
        rows.sort_unstable();
        for page in pages_for_rows(row_bytes, &rows) {
            trace.push(file.id, page);
        }
    }
    trace
}

/// Replay `trace` through a fresh cache over `ssd` capped at
/// `budget_pages`, readahead off (the sweep measures replacement, not
/// prefetch). Returns the policy-attributed counts and wall time.
fn replay(
    ssd: &Arc<SimSsd>,
    file: FileHandle,
    trace: &AccessTrace,
    budget_pages: usize,
    policy: Box<dyn EvictionPolicy>,
    label: &'static str,
) -> PolicyResult {
    let cache = PageCache::with_policy(
        Arc::clone(ssd),
        MemoryGovernor::unlimited(),
        budget_pages,
        policy,
    );
    cache.set_readahead(0);
    let mut byte = [0u8; 1];
    let start = Instant::now();
    for &(fid, page) in &trace.accesses {
        debug_assert_eq!(fid, file.id, "sweep traces are single-file");
        cache.read(file, page * trace.page_size as u64, &mut byte);
    }
    let epoch_secs = start.elapsed().as_secs_f64();
    let stats = cache.stats();
    PolicyResult {
        policy: label,
        hits: stats.hits,
        misses: stats.misses,
        epoch_secs,
    }
}

/// Run the pinned sweep over the paper-class SSD profile.
pub fn run_sweep() -> Result<SweepOutcome, String> {
    run_sweep_with_profile(SsdProfile::pm883_repro())
}

/// Run the sweep over an explicit SSD profile (tests use
/// [`SsdProfile::instant`] — hit counts are identical, only wall times
/// change, which is exactly why the gate never compares times across
/// runs).
pub fn run_sweep_with_profile(profile: SsdProfile) -> Result<SweepOutcome, String> {
    let sc = sweep_scenario(profile);
    let ds = dataset_for(&sc);
    let pre = presample_epoch(
        Arc::new(InMemTopo::new(Arc::clone(&ds.topology))),
        &ds.train_idx,
        ds.spec.num_nodes,
        sc.batch_size,
        sc.fanouts.clone(),
        SWEEP_EPOCH,
        SWEEP_SEED,
        Some(SWEEP_BATCHES),
    );
    if pre.batches.is_empty() {
        return Err("presample produced no batches".into());
    }
    let row_bytes = ds.spec.feature_row_bytes() as u64;
    let trace = trace_of_schedule(&pre, ds.features_file, row_bytes, |n| n as u64);
    let layout = pack_features(&ds, &pre.freq, &pre.first_seen).map_err(|e| e.to_string())?;
    let packed_trace = trace_of_schedule(&pre, layout.file, row_bytes, |n| layout.row_of(n));

    let unique = trace.unique_pages();
    if unique < 8 {
        return Err(format!("trace touches only {unique} pages"));
    }
    let mut budgets: Vec<Json> = Vec::new();
    for fraction in SWEEP_BUDGET_FRACTIONS {
        let budget_pages = ((unique as f64 * fraction).ceil() as usize).max(1);
        let results = [
            replay(
                &ds.ssd,
                ds.features_file,
                &trace,
                budget_pages,
                Box::new(LruPolicy::new()),
                "lru",
            ),
            replay(
                &ds.ssd,
                ds.features_file,
                &trace,
                budget_pages,
                Box::new(BeladyPolicy::from_trace(&trace)),
                "belady",
            ),
            replay(
                &ds.ssd,
                layout.file,
                &packed_trace,
                budget_pages,
                Box::new(BeladyPolicy::from_trace(&packed_trace)),
                "belady_packed",
            ),
        ];
        let mut policies = Json::obj();
        for r in &results {
            let mut p = Json::obj();
            p.set("hits", r.hits.into())
                .set("misses", r.misses.into())
                .set("hit_rate", r.hit_rate().into())
                .set("epoch_secs", r.epoch_secs.into());
            policies.set(r.policy, p);
        }
        let mut point = Json::obj();
        point
            .set("budget_pages", (budget_pages as u64).into())
            .set("fraction", fraction.into())
            .set("policies", policies);
        budgets.push(point);
    }

    let mut trace_meta = Json::obj();
    trace_meta
        .set("accesses", (trace.len() as u64).into())
        .set("unique_pages", (unique as u64).into())
        .set("packed_unique_pages", (packed_trace.unique_pages() as u64).into())
        .set("batches", (pre.batches.len() as u64).into());
    let mut doc = Json::obj();
    doc.set("schema_version", CACHE_SWEEP_SCHEMA_VERSION.into())
        .set("kind", "bench_cache_sweep".into())
        .set("seed", SWEEP_SEED.into())
        .set("epoch", SWEEP_EPOCH.into())
        .set("config", crate::artifacts::scenario_desc(&sc).into())
        .set("trace", trace_meta)
        .set("budgets", Json::Arr(budgets));
    Ok(SweepOutcome { doc, trace })
}

/// Stable artifact paths under `dir`.
pub fn sweep_path(dir: &Path) -> PathBuf {
    dir.join("BENCH_cache_sweep.json")
}
pub fn trace_artifact_path(dir: &Path) -> PathBuf {
    dir.join("TRACE_cache_sweep.bin")
}

/// Pull `(fraction, budget_pages, per-policy results)` out of a document.
fn sweep_points(doc: &Json) -> Result<Vec<(f64, u64, Vec<PolicyResult>)>, String> {
    let budgets = doc
        .get("budgets")
        .and_then(Json::as_array)
        .ok_or("missing budgets")?;
    let mut out = Vec::new();
    for point in budgets {
        let fraction = point
            .get("fraction")
            .and_then(Json::as_f64)
            .ok_or("missing fraction")?;
        let budget_pages = point
            .get("budget_pages")
            .and_then(Json::as_u64)
            .ok_or("missing budget_pages")?;
        let policies = point.get("policies").ok_or("missing policies")?;
        let mut results = Vec::new();
        for &name in &SWEEP_POLICIES {
            let p = policies
                .get(name)
                .ok_or_else(|| format!("missing policy {name}"))?;
            let get = |k: &str| {
                p.get(k)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("policy {name} missing {k}"))
            };
            results.push(PolicyResult {
                policy: name,
                hits: get("hits")? as u64,
                misses: get("misses")? as u64,
                epoch_secs: get("epoch_secs")?,
            });
        }
        out.push((fraction, budget_pages, results));
    }
    Ok(out)
}

fn result_of<'a>(results: &'a [PolicyResult], name: &str) -> &'a PolicyResult {
    results
        .iter()
        .find(|r| r.policy == name)
        .expect("sweep_points guarantees every policy")
}

/// Structural + invariant validation of one sweep document:
/// schema version, ≥ 3 budgets, consistent access totals, hit rates in
/// [0, 1] — and the tentpole's claim itself, Belady ≥ LRU on hit rate at
/// *every* budget (it is replaying the exact future; losing to LRU means
/// the policy is broken, not the workload unlucky).
pub fn validate_cache_sweep(doc: &Json) -> Result<(), String> {
    let version = doc
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("missing schema_version")?;
    if version != CACHE_SWEEP_SCHEMA_VERSION {
        return Err(format!(
            "schema_version {version} != {CACHE_SWEEP_SCHEMA_VERSION}"
        ));
    }
    if doc.get("kind").and_then(Json::as_str) != Some("bench_cache_sweep") {
        return Err("kind != bench_cache_sweep".into());
    }
    let accesses = doc
        .get("trace")
        .and_then(|t| t.get("accesses"))
        .and_then(Json::as_u64)
        .ok_or("missing trace.accesses")?;
    if accesses == 0 {
        return Err("empty trace".into());
    }
    let points = sweep_points(doc)?;
    if points.len() < 3 {
        return Err(format!("{} budgets, need >= 3", points.len()));
    }
    for (fraction, budget_pages, results) in &points {
        if *budget_pages == 0 {
            return Err(format!("budget {fraction} has zero pages"));
        }
        for r in results {
            if !(0.0..=1.0).contains(&r.hit_rate()) || !r.epoch_secs.is_finite() {
                return Err(format!("{}@{fraction}: bad result", r.policy));
            }
            // Every policy replays the same schedule; the natural-layout
            // policies must agree on the total access count exactly.
            if r.policy != "belady_packed" && r.hits + r.misses != accesses {
                return Err(format!(
                    "{}@{fraction}: {} accesses counted, trace has {accesses}",
                    r.policy,
                    r.hits + r.misses
                ));
            }
        }
        let lru = result_of(results, "lru");
        let belady = result_of(results, "belady");
        if belady.hit_rate() < lru.hit_rate() {
            return Err(format!(
                "belady hit rate {:.4} < lru {:.4} at budget fraction {fraction}",
                belady.hit_rate(),
                lru.hit_rate()
            ));
        }
    }
    Ok(())
}

/// Diff `current` against `baseline`: a Belady (or packed-Belady) hit
/// rate that dropped more than `epsilon` at any budget is a regression —
/// the sweep is deterministic, so any real drop means the policy, trace
/// recorder, or packer got worse. LRU is diffed too (it is the control).
pub fn compare_cache_sweep(
    baseline: &Json,
    current: &Json,
    epsilon: f64,
) -> Result<Vec<Regression>, String> {
    for doc in [baseline, current] {
        let v = doc
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("missing schema_version")?;
        if v != CACHE_SWEEP_SCHEMA_VERSION {
            return Err(format!("cannot compare across schema versions ({v})"));
        }
    }
    let base = sweep_points(baseline)?;
    let cur = sweep_points(current)?;
    if base.len() != cur.len() {
        return Err(format!(
            "budget count changed: baseline {} vs current {}",
            base.len(),
            cur.len()
        ));
    }
    let mut out = Vec::new();
    for ((bf, _, bres), (cf, _, cres)) in base.iter().zip(&cur) {
        if (bf - cf).abs() > 1e-9 {
            return Err(format!("budget fractions differ: {bf} vs {cf}"));
        }
        for &name in &SWEEP_POLICIES {
            let b = result_of(bres, name).hit_rate();
            let c = result_of(cres, name).hit_rate();
            if c < b - epsilon {
                out.push(Regression {
                    scenario: "cache_sweep".into(),
                    metric: format!("{name}.hit_rate@{bf}"),
                    baseline: b,
                    current: c,
                });
            }
        }
    }
    Ok(out)
}

/// The Fig-9-style table rows of one document: one row per budget, one
/// hit-rate cell per policy plus the Belady−LRU delta.
pub fn hit_rate_rows(doc: &Json) -> Result<Vec<Row>, String> {
    let mut rows = Vec::new();
    for (fraction, budget_pages, results) in sweep_points(doc)? {
        let lru = result_of(&results, "lru").hit_rate();
        let belady = result_of(&results, "belady").hit_rate();
        let mut row = Row::new(format!("{:.0}% ({budget_pages} pages)", fraction * 100.0));
        for &name in &SWEEP_POLICIES {
            let r = result_of(&results, name);
            row = row.cell(format!("{:.4}", r.hit_rate()));
        }
        rows.push(row.cell(format!("{:+.4}", belady - lru)));
    }
    Ok(rows)
}

/// Per-budget hit-rate delta rows between two documents (for
/// `trajectory compare`): baseline vs current Belady, and the drift.
pub fn hit_rate_delta_rows(baseline: &Json, current: &Json) -> Result<Vec<Row>, String> {
    let base = sweep_points(baseline)?;
    let cur = sweep_points(current)?;
    if base.len() != cur.len() {
        return Err("budget count changed".into());
    }
    let mut rows = Vec::new();
    for ((f, _, bres), (_, _, cres)) in base.iter().zip(&cur) {
        let mut row = Row::new(format!("{:.0}%", f * 100.0));
        for &name in &SWEEP_POLICIES {
            let b = result_of(bres, name).hit_rate();
            let c = result_of(cres, name).hit_rate();
            row = row.cell(format!("{b:.4} -> {c:.4} ({:+.4})", c - b));
        }
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The real sweep, over an instant device so the test is fast. This is
    /// the tentpole's end-to-end check: at every pinned budget the
    /// trace-driven policy beats (never ties, on this schedule) plain LRU.
    #[test]
    fn sweep_beats_lru_at_every_budget() {
        let out = run_sweep_with_profile(SsdProfile::instant()).unwrap();
        validate_cache_sweep(&out.doc).unwrap();
        let points = sweep_points(&out.doc).unwrap();
        assert_eq!(points.len(), SWEEP_BUDGET_FRACTIONS.len());
        for (fraction, _, results) in &points {
            let lru = result_of(results, "lru").hit_rate();
            let belady = result_of(results, "belady").hit_rate();
            assert!(
                belady > lru,
                "belady {belady:.4} must strictly beat lru {lru:.4} at {fraction}"
            );
        }
        assert!(!out.trace.is_empty());
        // Determinism: a second run reproduces every hit count exactly.
        let again = run_sweep_with_profile(SsdProfile::instant()).unwrap();
        let again_points = sweep_points(&again.doc).unwrap();
        for ((_, _, a), (_, _, b)) in points.iter().zip(&again_points) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!((x.hits, x.misses), (y.hits, y.misses), "{}", x.policy);
            }
        }
    }

    #[test]
    fn packing_concentrates_the_working_set() {
        let out = run_sweep_with_profile(SsdProfile::instant()).unwrap();
        let t = out.doc.get("trace").unwrap();
        let unpacked = t.get("unique_pages").and_then(Json::as_u64).unwrap();
        let packed = t.get("packed_unique_pages").and_then(Json::as_u64).unwrap();
        assert!(
            packed <= unpacked,
            "hot-first packing must not widen the page working set ({packed} > {unpacked})"
        );
    }

    #[test]
    fn validation_rejects_broken_docs() {
        let out = run_sweep_with_profile(SsdProfile::instant()).unwrap();
        let mut doc = out.doc.clone();
        doc.set("schema_version", 99u64.into());
        assert!(validate_cache_sweep(&doc)
            .unwrap_err()
            .contains("schema_version"));

        // A Belady result losing to LRU must fail validation: swap the two
        // policies' numbers at the tightest budget.
        let mut doc = out.doc.clone();
        let budgets = doc.get("budgets").and_then(Json::as_array).unwrap().to_vec();
        let mut point = budgets[0].clone();
        let policies = point.get("policies").unwrap().clone();
        let mut swapped = Json::obj();
        swapped
            .set("lru", policies.get("belady").unwrap().clone())
            .set("belady", policies.get("lru").unwrap().clone())
            .set(
                "belady_packed",
                policies.get("belady_packed").unwrap().clone(),
            );
        point.set("policies", swapped);
        let mut arr = vec![point];
        arr.extend(budgets.iter().skip(1).cloned());
        doc.set("budgets", Json::Arr(arr));
        assert!(validate_cache_sweep(&doc).unwrap_err().contains("belady"));
    }

    #[test]
    fn compare_flags_hit_rate_drops() {
        let out = run_sweep_with_profile(SsdProfile::instant()).unwrap();
        // Identical docs: no regressions.
        assert!(compare_cache_sweep(&out.doc, &out.doc, 0.001)
            .unwrap()
            .is_empty());
        // Degrade belady at one budget beyond epsilon.
        let mut worse = out.doc.clone();
        let budgets = worse
            .get("budgets")
            .and_then(Json::as_array)
            .unwrap()
            .to_vec();
        let mut point = budgets[0].clone();
        let mut policies = point.get("policies").unwrap().clone();
        let mut belady = policies.get("belady").unwrap().clone();
        let hits = belady.get("hits").and_then(Json::as_u64).unwrap();
        let misses = belady.get("misses").and_then(Json::as_u64).unwrap();
        let degraded = hits / 2;
        belady
            .set("hits", degraded.into())
            .set("misses", (misses + hits - degraded).into())
            .set(
                "hit_rate",
                (degraded as f64 / (hits + misses) as f64).into(),
            );
        policies.set("belady", belady);
        point.set("policies", policies);
        let mut arr = vec![point];
        arr.extend(budgets.iter().skip(1).cloned());
        worse.set("budgets", Json::Arr(arr));
        let regs = compare_cache_sweep(&out.doc, &worse, 0.001).unwrap();
        assert_eq!(regs.len(), 1);
        assert!(regs[0].metric.starts_with("belady.hit_rate"));
        // The delta table renders for the same pair.
        let rows = hit_rate_delta_rows(&out.doc, &worse).unwrap();
        assert_eq!(rows.len(), SWEEP_BUDGET_FRACTIONS.len());
    }

    #[test]
    fn table_rows_cover_every_budget() {
        let out = run_sweep_with_profile(SsdProfile::instant()).unwrap();
        let rows = hit_rate_rows(&out.doc).unwrap();
        assert_eq!(rows.len(), SWEEP_BUDGET_FRACTIONS.len());
        // policy columns + delta column
        assert!(rows.iter().all(|r| r.cells.len() == SWEEP_POLICIES.len() + 1));
    }
}
