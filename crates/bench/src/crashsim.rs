//! Crash-schedule sweep: enumerate every crash point of a checkpointed
//! training run, cut each one (process death + power loss), and prove
//! recovery.
//!
//! The harness runs one pinned configuration (small planted-label dataset,
//! `reorder = false` so the trajectory is a pure function of the resume
//! state) in checkpointed chunks, with a recording pass first: the crash
//! registry enumerates every crash point the persistence paths traverse.
//! Then, for each ordinal `k` of that schedule, a fresh run is armed to
//! die at point `k`; the simulated SSD takes a seeded [`SimSsd::power_cut`]
//! (unflushed sectors dropped, kept, or torn), and a restarted pipeline
//! recovers via [`TrainCheckpoint::recover_from_ssd`]. The acceptance
//! properties, checked per schedule:
//!
//! * recovery lands on the **last durable** checkpoint — exactly the
//!   newest slot whose publish flush preceded the cut;
//! * the resumed trajectory is **bit-identical** to the uninterrupted
//!   run's final weights;
//! * `storage.integrity.escaped` stays 0 — every torn sector is caught by
//!   CRC verification, never silently read;
//! * the host checkpoint artifact is never observable half-written: it is
//!   absent, a complete old version, or a complete new version.

use gnndrive_core::{CheckpointError, Error, GnnDriveConfig, Pipeline, TrainCheckpoint};
use gnndrive_device::GpuDevice;
use gnndrive_graph::{Dataset, DatasetSpec};
use gnndrive_nn::ModelKind;
use gnndrive_storage::{FileHandle, MemoryGovernor, PageCache, SimSsd, SsdProfile};
use gnndrive_telemetry::{self as telemetry, Json};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Version of the `CRASH_SWEEP.json` document layout.
pub const CRASH_SWEEP_SCHEMA_VERSION: u64 = 1;

/// Checkpointed chunks per run and batches trained per chunk (pinned).
pub const SWEEP_CHUNKS: usize = 3;
pub const SWEEP_CHUNK_BATCHES: usize = 4;

/// The `storage.wcache.*` counters the sweep snapshots into its artifact.
pub const WCACHE_METRICS: [&str; 7] = [
    "storage.wcache.sectors_dirtied",
    "storage.wcache.flushes",
    "storage.wcache.sectors_flushed",
    "storage.wcache.power_cuts",
    "storage.wcache.sectors_kept",
    "storage.wcache.sectors_dropped",
    "storage.wcache.sectors_torn",
];

/// One enumerated crash schedule: cut at `ordinal` (the `ordinal`-th crash
/// point of the run), power-cut the device, restart, recover, resume.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// 0-based crash-point ordinal the run was armed to die at
    /// (`schedule[ordinal]` is the point that fired).
    pub ordinal: u64,
    /// Name of the crash point that fired.
    pub point: String,
    /// `next_batch` of the checkpoint recovery was expected to land on
    /// (the newest slot whose publish preceded the cut).
    pub expected_next_batch: u64,
    /// `next_batch` of the checkpoint recovery actually landed on.
    pub recovered_next_batch: u64,
    /// Resumed final weights byte-equal to the uninterrupted run's.
    pub bit_identical: bool,
    /// Host checkpoint artifact was absent or parsed completely.
    pub host_artifact_clean: bool,
    /// Power-cut fate of the unflushed sectors.
    pub sectors_kept: u64,
    pub sectors_dropped: u64,
    pub sectors_torn: u64,
}

impl ScheduleOutcome {
    /// All acceptance properties of this schedule hold.
    pub fn holds(&self) -> bool {
        self.bit_identical
            && self.host_artifact_clean
            && self.recovered_next_batch == self.expected_next_batch
    }
}

/// The whole sweep: the recorded schedule plus one outcome per ordinal.
#[derive(Debug, Clone)]
pub struct CrashSweepOutcome {
    pub seed: u64,
    /// Crash points of the uninterrupted run, in traversal order.
    pub schedule: Vec<String>,
    pub outcomes: Vec<ScheduleOutcome>,
    /// `storage.integrity.escaped` after the sweep (must be 0).
    pub escaped: u64,
}

impl CrashSweepOutcome {
    /// Every schedule recovered to the last durable checkpoint with a
    /// bit-identical trajectory and clean host artifacts, and nothing
    /// escaped integrity verification.
    pub fn holds(&self) -> bool {
        self.escaped == 0
            && !self.outcomes.is_empty()
            && self.outcomes.len() == self.schedule.len()
            && self.outcomes.iter().all(ScheduleOutcome::holds)
    }
}

/// The planted-label dataset every run of the sweep rebuilds (power cuts
/// mutate the device, so runs cannot share one). Same spec seed → every
/// device starts byte-identical.
fn sweep_dataset() -> Arc<Dataset> {
    Arc::new(Dataset::build(
        DatasetSpec {
            name: "crashsim".into(),
            num_nodes: 1_500,
            num_edges: 12_000,
            feat_dim: 16,
            num_classes: 4,
            intra_prob: 0.8,
            feature_signal: 1.2,
            train_fraction: 0.2,
            seed: 0xC4A5,
        },
        SimSsd::new(SsdProfile::instant()),
    ))
}

/// `reorder = false` restores trainer submission order, making the final
/// weights a pure function of (restored state, batch plan) — the property
/// the bit-identical assertion rests on.
fn sweep_pipeline(ds: &Arc<Dataset>) -> Result<Pipeline, String> {
    let cfg = GnnDriveConfig {
        reorder: false,
        fanouts: vec![3, 3],
        batch_size: 8,
        feature_buffer_slots: 8_192,
        seed: 11,
        ..Default::default()
    };
    let gov = MemoryGovernor::unlimited();
    let cache = PageCache::new(Arc::clone(&ds.ssd), Arc::clone(&gov));
    Pipeline::builder(Arc::clone(ds), GpuDevice::rtx3090())
        .with_model(ModelKind::GraphSage, 16)
        .with_config(cfg)
        .with_governor(gov)
        .with_page_cache(cache)
        .build()
        .map_err(|e| format!("pipeline: {e}"))
}

/// Train `SWEEP_CHUNKS × SWEEP_CHUNK_BATCHES` batches of epoch 0 from
/// `start_chunk`, persisting each chunk's checkpoint to its slot (and to
/// the host artifact when given). Returns the first persistence error —
/// under an armed schedule, the simulated process death.
fn run_checkpointed(
    p: &mut Pipeline,
    ds: &Arc<Dataset>,
    slots: &[FileHandle],
    start_chunk: usize,
    host_ck: Option<&Path>,
) -> Result<(), String> {
    for c in start_chunk..SWEEP_CHUNKS {
        let stats = p.train_epoch_range(0, c * SWEEP_CHUNK_BATCHES, Some(SWEEP_CHUNK_BATCHES));
        if let Some(e) = stats.report.error {
            return Err(format!("chunk {c} failed: {e}"));
        }
        let ck = p.checkpoint(0, ((c + 1) * SWEEP_CHUNK_BATCHES) as u64);
        ck.write_to_slot(&ds.ssd, slots[c + 1])
            .map_err(|e| format!("chunk {c} ssd checkpoint: {e}"))?;
        if let Some(path) = host_ck {
            ck.save_file(path)
                .map_err(|e| format!("chunk {c} host checkpoint: {e}"))?;
        }
    }
    Ok(())
}

/// Allocate the fixed slot directory (slot 0 = pre-training state, slot
/// `c + 1` = chunk `c`) and publish the initial checkpoint into slot 0.
/// Runs before any crash window opens, so a restart after *any* cut finds
/// at least the initial state durable.
fn setup_slots(p: &mut Pipeline, ds: &Arc<Dataset>) -> Result<Vec<FileHandle>, String> {
    let init = p.checkpoint(0, 0);
    // Adam allocates its two moment matrices lazily, so steady-state
    // checkpoints outgrow the initial one by about twice the weight
    // payload; size every slot for that worst case up front.
    let slot_len = 8 + (init.to_bytes().len() + 2 * init.model.len() + 4_096) as u64;
    let slots: Vec<FileHandle> = (0..=SWEEP_CHUNKS)
        .map(|_| ds.ssd.create_file(slot_len))
        .collect();
    init.write_to_slot(&ds.ssd, slots[0])
        .map_err(|e| format!("initial checkpoint: {e}"))?;
    Ok(slots)
}

/// The last durable checkpoint's `next_batch` for a cut at the 0-based
/// `ordinal`: `SWEEP_CHUNK_BATCHES ×` the number of
/// `checkpoint.ssd.publish` points up to and *including* the cut — the
/// publish point fires after its commit-record flush, so a cut exactly
/// there still leaves that slot durable.
pub fn expected_next_batch(schedule: &[String], ordinal: u64) -> u64 {
    let end = (ordinal as usize).saturating_add(1).min(schedule.len());
    let published = schedule[..end]
        .iter()
        .filter(|p| *p == "checkpoint.ssd.publish")
        .count() as u64;
    published * SWEEP_CHUNK_BATCHES as u64
}

/// The host artifact contract after a cut: the path holds a complete
/// checkpoint (old or new generation — any chunk boundary), or nothing at
/// all. A typed parse failure means a torn write escaped atomicity.
fn host_artifact_clean(path: &Path) -> bool {
    match TrainCheckpoint::load_file(path) {
        Ok(ck) => ck.epoch == 0 && ck.next_batch % SWEEP_CHUNK_BATCHES as u64 == 0,
        Err(Error::Checkpoint(CheckpointError::HostIo { .. })) => true,
        Err(_) => false,
    }
}

/// Run the full sweep. `scratch` hosts the per-schedule checkpoint
/// artifacts (the caller owns cleanup). The caller must serialize access
/// to the process-global crash registry (it is armed here).
pub fn run_crash_sweep(seed: u64, scratch: &Path) -> Result<CrashSweepOutcome, String> {
    std::fs::create_dir_all(scratch).map_err(|e| format!("{}: {e}", scratch.display()))?;

    // Recording pass: uninterrupted run, enumerating the crash schedule
    // and producing the reference trajectory.
    let ds = sweep_dataset();
    let mut p = sweep_pipeline(&ds)?;
    let slots = setup_slots(&mut p, &ds)?;
    telemetry::crash::start_recording();
    let recorded = run_checkpointed(&mut p, &ds, &slots, 0, Some(&scratch.join("ck_ref.gnck")));
    let schedule = telemetry::crash::stop_recording();
    recorded.map_err(|e| format!("recording pass: {e}"))?;
    if schedule.is_empty() {
        return Err("recording pass traversed no crash points".into());
    }
    let reference = p.model_mut().save();

    let mut outcomes = Vec::with_capacity(schedule.len());
    for k in 0..schedule.len() as u64 {
        let ds = sweep_dataset();
        let mut p = sweep_pipeline(&ds)?;
        let slots = setup_slots(&mut p, &ds).map_err(|e| format!("schedule {k}: {e}"))?;
        let host = scratch.join(format!("ck_{k}.gnck"));

        telemetry::crash::arm(k, seed);
        let died = run_checkpointed(&mut p, &ds, &slots, 0, Some(&host));
        let cut = telemetry::crash::tripped();
        // Power loss at the instant of death: unflushed sectors are
        // dropped, kept, or torn, deterministically per (seed, ordinal).
        let power = ds.ssd.power_cut(seed.wrapping_add(k));
        telemetry::crash::disarm();
        let cut = match (died, cut) {
            (Err(_), Some(cut)) => cut,
            (died, cut) => {
                return Err(format!(
                    "schedule {k}/{}: expected a cut, got died={died:?} tripped={cut:?}",
                    schedule.len()
                ));
            }
        };

        // Restart: a fresh pipeline on the powered-cycled device recovers
        // from the newest durable slot and resumes the epoch.
        let mut r = sweep_pipeline(&ds)?;
        let (slot_idx, ck) = TrainCheckpoint::recover_from_ssd(&ds.ssd, &slots)
            .ok_or_else(|| format!("schedule {k}: no durable checkpoint (slot 0 must survive)"))?;
        r.restore(&ck).map_err(|e| format!("schedule {k}: restore: {e}"))?;
        let resumed_chunk = ck.next_batch as usize / SWEEP_CHUNK_BATCHES;
        debug_assert_eq!(resumed_chunk, slot_idx, "slot index encodes the chunk");
        if resumed_chunk < SWEEP_CHUNKS {
            run_checkpointed(&mut r, &ds, &slots, resumed_chunk, None)
                .map_err(|e| format!("schedule {k}: resume: {e}"))?;
        }

        outcomes.push(ScheduleOutcome {
            ordinal: k,
            point: cut.point,
            expected_next_batch: expected_next_batch(&schedule, k),
            recovered_next_batch: ck.next_batch,
            bit_identical: r.model_mut().save() == reference,
            host_artifact_clean: host_artifact_clean(&host),
            sectors_kept: power.kept,
            sectors_dropped: power.dropped,
            sectors_torn: power.torn,
        });
    }

    Ok(CrashSweepOutcome {
        seed,
        schedule,
        outcomes,
        escaped: telemetry::counter("storage.integrity.escaped").get(),
    })
}

/// Assemble the `CRASH_SWEEP.json` document from a sweep outcome.
pub fn sweep_doc(sweep: &CrashSweepOutcome) -> Json {
    let mut wcache = Json::obj();
    for name in WCACHE_METRICS {
        wcache.set(
            name.trim_start_matches("storage.wcache."),
            (telemetry::counter(name).get() as f64).into(),
        );
    }
    let mut rows = Vec::with_capacity(sweep.outcomes.len());
    for o in &sweep.outcomes {
        let mut row = Json::obj();
        row.set("ordinal", (o.ordinal as f64).into())
            .set("point", o.point.as_str().into())
            .set("expected_next_batch", (o.expected_next_batch as f64).into())
            .set(
                "recovered_next_batch",
                (o.recovered_next_batch as f64).into(),
            )
            .set("bit_identical", Json::Bool(o.bit_identical))
            .set("host_artifact_clean", Json::Bool(o.host_artifact_clean))
            .set("sectors_kept", (o.sectors_kept as f64).into())
            .set("sectors_dropped", (o.sectors_dropped as f64).into())
            .set("sectors_torn", (o.sectors_torn as f64).into());
        rows.push(row);
    }
    let mut doc = Json::obj();
    doc.set("schema_version", (CRASH_SWEEP_SCHEMA_VERSION as f64).into())
        .set("kind", "crash_sweep".into())
        .set("seed", (sweep.seed as f64).into())
        .set(
            "schedule",
            Json::Arr(
                sweep
                    .schedule
                    .iter()
                    .map(|s| Json::Str(s.clone()))
                    .collect(),
            ),
        )
        .set("schedules", (sweep.outcomes.len() as f64).into())
        .set("escaped", (sweep.escaped as f64).into())
        .set("holds", Json::Bool(sweep.holds()))
        .set("wcache", wcache)
        .set("outcomes", Json::Arr(rows));
    doc
}

/// Structural validation of a `CRASH_SWEEP.json` document: schema, shape,
/// and the acceptance properties themselves.
pub fn validate_crash_sweep(doc: &Json) -> Result<(), String> {
    let version = doc
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("missing schema_version")?;
    if version != CRASH_SWEEP_SCHEMA_VERSION {
        return Err(format!(
            "schema_version {version} != {CRASH_SWEEP_SCHEMA_VERSION}"
        ));
    }
    if doc.get("kind").and_then(Json::as_str) != Some("crash_sweep") {
        return Err("kind != crash_sweep".into());
    }
    let schedules = doc
        .get("schedules")
        .and_then(Json::as_u64)
        .ok_or("missing schedules")?;
    if schedules == 0 {
        return Err("sweep exercised no schedules".into());
    }
    let schedule = doc
        .get("schedule")
        .and_then(Json::as_array)
        .ok_or("missing schedule")?;
    if schedule.len() as u64 != schedules {
        return Err(format!(
            "schedule lists {} points but {schedules} schedules ran",
            schedule.len()
        ));
    }
    if doc.get("escaped").and_then(Json::as_u64) != Some(0) {
        return Err("escaped != 0: corruption passed verification".into());
    }
    if doc.get("holds") != Some(&Json::Bool(true)) {
        return Err("holds != true".into());
    }
    let outcomes = doc
        .get("outcomes")
        .and_then(Json::as_array)
        .ok_or("missing outcomes")?;
    if outcomes.len() as u64 != schedules {
        return Err("outcomes count != schedules".into());
    }
    for (i, o) in outcomes.iter().enumerate() {
        let expected = o.get("expected_next_batch").and_then(Json::as_u64);
        let recovered = o.get("recovered_next_batch").and_then(Json::as_u64);
        if expected.is_none() || expected != recovered {
            return Err(format!(
                "outcome {i}: recovered {recovered:?} != expected {expected:?}"
            ));
        }
        for flag in ["bit_identical", "host_artifact_clean"] {
            if o.get(flag) != Some(&Json::Bool(true)) {
                return Err(format!("outcome {i}: {flag} != true"));
            }
        }
    }
    let wcache = doc.get("wcache").ok_or("missing wcache")?;
    for name in WCACHE_METRICS {
        let key = name.trim_start_matches("storage.wcache.");
        if wcache.get(key).and_then(Json::as_u64).is_none() {
            return Err(format!("wcache missing {key}"));
        }
    }
    Ok(())
}

/// The stable artifact path of the sweep document under `dir`.
pub fn crash_sweep_path(dir: &Path) -> PathBuf {
    dir.join("CRASH_SWEEP.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sweep() -> CrashSweepOutcome {
        let schedule = vec![
            "checkpoint.ssd.begin".to_string(),
            "checkpoint.ssd.blob".to_string(),
            "checkpoint.ssd.flushed".to_string(),
            "checkpoint.ssd.publish".to_string(),
            "checkpoint.host.begin".to_string(),
            "checkpoint.host.tmp".to_string(),
            "checkpoint.host.sync".to_string(),
            "checkpoint.host.publish".to_string(),
        ];
        let outcomes = (0..schedule.len() as u64)
            .map(|k| ScheduleOutcome {
                ordinal: k,
                point: schedule[k as usize].clone(),
                expected_next_batch: expected_next_batch(&schedule, k),
                recovered_next_batch: expected_next_batch(&schedule, k),
                bit_identical: true,
                host_artifact_clean: true,
                sectors_kept: 1,
                sectors_dropped: 2,
                sectors_torn: 0,
            })
            .collect();
        CrashSweepOutcome {
            seed: 7,
            schedule,
            outcomes,
            escaped: 0,
        }
    }

    #[test]
    fn expected_next_batch_counts_published_slots() {
        let s = sample_sweep().schedule;
        // Cuts before the publish point leave nothing new durable...
        for k in 0..=2 {
            assert_eq!(expected_next_batch(&s, k), 0, "ordinal {k}");
        }
        // ...and from the publish point on (its flush already happened),
        // the chunk is durable.
        for k in 3..=7 {
            assert_eq!(
                expected_next_batch(&s, k),
                SWEEP_CHUNK_BATCHES as u64,
                "ordinal {k}"
            );
        }
    }

    #[test]
    fn sweep_doc_round_trips_validation() {
        let sweep = sample_sweep();
        assert!(sweep.holds());
        let doc = sweep_doc(&sweep);
        let parsed = Json::parse(&doc.to_json_string()).expect("valid JSON");
        validate_crash_sweep(&parsed).expect("valid doc");
    }

    #[test]
    fn validation_rejects_broken_docs() {
        let mut doc = sweep_doc(&sample_sweep());
        doc.set("schema_version", 99.0.into());
        assert!(validate_crash_sweep(&doc)
            .unwrap_err()
            .contains("schema_version"));

        let mut doc = sweep_doc(&sample_sweep());
        doc.set("escaped", 2.0.into());
        assert!(validate_crash_sweep(&doc).unwrap_err().contains("escaped"));

        let mut sweep = sample_sweep();
        sweep.outcomes[3].recovered_next_batch = 0;
        assert!(!sweep.holds());
        let doc = sweep_doc(&sweep);
        assert!(validate_crash_sweep(&doc).is_err());

        let mut sweep = sample_sweep();
        sweep.outcomes[0].bit_identical = false;
        assert!(validate_crash_sweep(&sweep_doc(&sweep)).is_err());
    }
}
