//! Perf-trajectory bench harness: a pinned scenario suite whose artifacts
//! are comparable across commits.
//!
//! Each scenario runs the *same* GNNDrive construction path
//! ([`build_gnndrive_pipeline`]) and differs only in configuration — the
//! paper's argument in miniature: `tight_memory` starves the feature
//! buffer (slots pinned at the Ne × Mb deadlock-reservation floor) so
//! extractors stall on slot recycling (𝔒1), `compute_heavy` gives the same
//! model roomy buffers so training dominates, and `balanced` runs the
//! paper-default SSD profile. Each run writes a schema-versioned
//! `BENCH_<scenario>.json` (epoch time, per-stage percentiles, attribution
//! fractions + verdict, cache hit rate) under a stable name so a committed
//! baseline can be diffed by [`compare`].

use crate::scenario::{
    build_gnndrive_pipeline, dataset_for, worst_case_batch_nodes, EnvKnobs, Scenario,
};
use crate::{artifacts, PIPELINE_STAGES};
use gnndrive_graph::MiniDataset;
use gnndrive_nn::ModelKind;
use gnndrive_storage::SsdProfile;
use gnndrive_telemetry::{self as telemetry, AttributionReport, BottleneckVerdict, Json};
use std::path::{Path, PathBuf};

/// Version of the `BENCH_<scenario>.json` document layout. Bump when a
/// field changes meaning; [`compare`] refuses to diff across versions.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// One pinned point of the trajectory suite.
pub struct TrajectoryScenario {
    /// Stable artifact stem: the file is `BENCH_<name>.json`.
    pub name: &'static str,
    pub scenario: Scenario,
    /// Batches trained (pinned — the suite must be comparable across
    /// machines, so it does not read the `REPRO_*` knobs).
    pub max_batches: usize,
    /// Verdict this configuration is constructed to produce, when the
    /// construction makes one inevitable; checked by [`validate_bench`].
    pub expected_verdict: Option<BottleneckVerdict>,
}

/// Pinned knobs for the suite (deliberately not [`crate::env_knobs`]).
fn pinned_knobs() -> EnvKnobs {
    EnvKnobs {
        scale: 0.05,
        max_batches: Some(SUITE_BATCHES),
        epochs: 1,
        full: false,
    }
}

/// Batches trained per scenario. Fewer than ~20 and the pipeline never
/// reaches steady state, which makes the attribution fractions (and so
/// the verdict) scheduling-sensitive; 30 was measured stable across
/// repeated runs.
const SUITE_BATCHES: usize = 30;

/// Shared base of the two verdict-pinned scenarios: tiny Twitter analog,
/// two-hop fanouts, and a hidden width that makes the trainer a real
/// stage. The width matters twice: heavier training is what `compute_heavy`
/// measures, and under `tight_memory` every millisecond the trainer holds
/// a batch is a millisecond all four extractors stay blocked on slot
/// recycling — so slot waits accrue at ~Ne× the training time and the
/// memory verdict is structural, not a timing accident.
fn base_scenario() -> Scenario {
    let knobs = pinned_knobs();
    Scenario {
        model: ModelKind::GraphSage,
        hidden: 512,
        batch_size: 8,
        fanouts: vec![3, 3],
        ..Scenario::default_for(MiniDataset::Twitter, &knobs)
    }
}

/// The pinned scenario suite, in reporting order.
///
/// `tight_memory` and `compute_heavy` share every knob except the memory
/// configuration (feature-buffer slots + host budget), so the differing
/// verdicts demonstrably come from memory pressure alone — the same
/// construction path with the same model, dataset, and SSD.
pub fn suite() -> Vec<TrajectoryScenario> {
    // GPU mode runs 4 extractors (see build_gnndrive_pipeline).
    let extractors = 4;
    let base = base_scenario();
    let mb = worst_case_batch_nodes(&base);
    vec![
        TrajectoryScenario {
            name: "tight_memory",
            scenario: Scenario {
                // Slots at the Ne × Mb reservation floor: every extractor
                // can hold its worst case, but nothing is spare, so
                // extract blocks on the releaser — memory contention by
                // construction. Instant SSD keeps I/O waits negligible.
                fb_slots_override: Some(extractors * mb),
                ssd: SsdProfile::instant(),
                ..base_scenario()
            },
            max_batches: SUITE_BATCHES,
            expected_verdict: Some(BottleneckVerdict::MemoryContentionBound),
        },
        TrajectoryScenario {
            name: "compute_heavy",
            scenario: Scenario {
                // Same model and dataset, but with 16× the slot floor
                // (and the host budget to match) the buffer never
                // starves; with an instant SSD the model is all that's
                // left.
                fb_slots_override: Some((16 * extractors * mb).next_power_of_two()),
                memory_gb: 512,
                ssd: SsdProfile::instant(),
                ..base_scenario()
            },
            max_batches: SUITE_BATCHES,
            expected_verdict: Some(BottleneckVerdict::ComputeBound),
        },
        TrajectoryScenario {
            name: "balanced",
            // The paper-default configuration (dim 128, GraphSAGE h16,
            // pm883 SSD profile, default buffer sizing): the reference
            // point of the trajectory, left verdict-unpinned because its
            // balance genuinely depends on the host.
            scenario: Scenario::default_for(MiniDataset::Twitter, &pinned_knobs()),
            max_batches: SUITE_BATCHES,
            expected_verdict: None,
        },
    ]
}

/// Run one scenario end to end and assemble its bench document.
pub fn run_scenario(ts: &TrajectoryScenario) -> Result<Json, String> {
    telemetry::reset_metrics();
    let ds = dataset_for(&ts.scenario);
    let mut p = build_gnndrive_pipeline(&ts.scenario, &ds, true)?;
    let stats = p.train_epoch_stats(0, Some(ts.max_batches));
    if let Some(e) = &stats.report.error {
        return Err(format!("{}: epoch error: {e}", ts.name));
    }
    let hits = telemetry::counter("page_cache.hits").get();
    let misses = telemetry::counter("page_cache.misses").get();
    let cache_hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };
    let mut stages = Json::obj();
    for (name, summary) in &stats.stages {
        stages.set(name, summary.to_json());
    }
    let mut doc = Json::obj();
    doc.set("schema_version", BENCH_SCHEMA_VERSION.into())
        .set("kind", "bench_trajectory".into())
        .set("scenario", ts.name.into())
        .set("config", artifacts::scenario_desc(&ts.scenario).into())
        .set("epoch_secs", stats.report.wall.as_secs_f64().into())
        .set("batches", (stats.report.batches as u64).into())
        .set("cache_hit_rate", cache_hit_rate.into())
        .set("stages", stages)
        .set("attribution", stats.attribution.to_json());
    if let Some(v) = ts.expected_verdict {
        doc.set("expected_verdict", v.label().into());
    }
    Ok(doc)
}

/// The stable artifact path of a scenario under `dir`.
pub fn bench_path(dir: &Path, scenario: &str) -> PathBuf {
    dir.join(format!("BENCH_{scenario}.json"))
}

/// Structural validation of one bench document (schema + invariants).
pub fn validate_bench(doc: &Json) -> Result<(), String> {
    let version = doc
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("missing schema_version")?;
    if version != BENCH_SCHEMA_VERSION {
        return Err(format!(
            "schema_version {version} != {BENCH_SCHEMA_VERSION}"
        ));
    }
    if doc.get("kind").and_then(Json::as_str) != Some("bench_trajectory") {
        return Err("kind != bench_trajectory".into());
    }
    if doc
        .get("scenario")
        .and_then(Json::as_str)
        .is_none_or(str::is_empty)
    {
        return Err("missing scenario".into());
    }
    let batches = doc
        .get("batches")
        .and_then(Json::as_u64)
        .ok_or("missing batches")?;
    if batches == 0 {
        return Err("batches == 0".into());
    }
    let epoch_secs = doc
        .get("epoch_secs")
        .and_then(Json::as_f64)
        .ok_or("missing epoch_secs")?;
    if !epoch_secs.is_finite() || epoch_secs < 0.0 {
        return Err(format!("bad epoch_secs {epoch_secs}"));
    }
    let rate = doc
        .get("cache_hit_rate")
        .and_then(Json::as_f64)
        .ok_or("missing cache_hit_rate")?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("cache_hit_rate {rate} outside [0,1]"));
    }
    let stages = doc.get("stages").ok_or("missing stages")?;
    for stage in PIPELINE_STAGES {
        let s = stages
            .get(stage)
            .ok_or_else(|| format!("missing stage {stage}"))?;
        let s = gnndrive_telemetry::HistSummary::from_json(s)
            .ok_or_else(|| format!("bad stage summary {stage}"))?;
        if s.count == 0 {
            return Err(format!("stage {stage} recorded no batches"));
        }
    }
    let attr = doc.get("attribution").ok_or("missing attribution")?;
    let attr = AttributionReport::from_json(attr).ok_or("bad attribution")?;
    for (name, f) in [
        ("mem_fraction", attr.mem_fraction),
        ("io_fraction", attr.io_fraction),
        ("compute_fraction", attr.compute_fraction),
    ] {
        if !(0.0..=1.0).contains(&f) {
            return Err(format!("{name} {f} outside [0,1]"));
        }
    }
    let total = attr.mem_fraction + attr.io_fraction + attr.compute_fraction;
    if attr.batches > 0 && (total - 1.0).abs() > 1e-6 {
        return Err(format!("fractions sum to {total}, expected 1"));
    }
    if let Some(want) = doc.get("expected_verdict").and_then(Json::as_str) {
        let want = BottleneckVerdict::parse(want)
            .ok_or_else(|| format!("bad expected_verdict {want:?}"))?;
        if attr.verdict != want {
            return Err(format!(
                "verdict {} != expected {}",
                attr.verdict.label(),
                want.label()
            ));
        }
    }
    Ok(())
}

/// One regression (or incomparability) found by [`compare`].
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    pub scenario: String,
    pub metric: String,
    pub baseline: f64,
    pub current: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} regressed {:.4} -> {:.4} ({:+.0}%)",
            self.scenario,
            self.metric,
            self.baseline,
            self.current,
            (self.current / self.baseline.max(f64::MIN_POSITIVE) - 1.0) * 100.0
        )
    }
}

/// Diff `current` against `baseline`, flagging metrics that regressed
/// beyond `threshold` (0.5 = +50%). Compared: epoch wall time and each
/// stage's p95. Verdict changes on verdict-pinned scenarios are caught by
/// [`validate_bench`], not here.
pub fn compare(baseline: &Json, current: &Json, threshold: f64) -> Result<Vec<Regression>, String> {
    for doc in [baseline, current] {
        let v = doc
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("missing schema_version")?;
        if v != BENCH_SCHEMA_VERSION {
            return Err(format!("cannot compare across schema versions ({v})"));
        }
    }
    let scenario = baseline
        .get("scenario")
        .and_then(Json::as_str)
        .ok_or("baseline missing scenario")?;
    if current.get("scenario").and_then(Json::as_str) != Some(scenario) {
        return Err("scenario mismatch between baseline and current".into());
    }
    let mut out = Vec::new();
    let mut check = |metric: String, base: f64, cur: f64| {
        if base > 0.0 && cur > base * (1.0 + threshold) {
            out.push(Regression {
                scenario: scenario.to_string(),
                metric,
                baseline: base,
                current: cur,
            });
        }
    };
    let pair_f64 = |key: &str| -> (f64, f64) {
        (
            baseline.get(key).and_then(Json::as_f64).unwrap_or(0.0),
            current.get(key).and_then(Json::as_f64).unwrap_or(0.0),
        )
    };
    let (b, c) = pair_f64("epoch_secs");
    check("epoch_secs".into(), b, c);
    for stage in PIPELINE_STAGES {
        let get = |doc: &Json| -> f64 {
            doc.get("stages")
                .and_then(|s| s.get(stage))
                .and_then(|s| s.get("p95_ns"))
                .and_then(Json::as_f64)
                .unwrap_or(0.0)
        };
        check(
            format!("stages.{stage}.p95_ns"),
            get(baseline),
            get(current),
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> Json {
        let mut w = gnndrive_telemetry::WaitTotals::default();
        w.add(gnndrive_telemetry::WaitKind::RingWait, 1_000);
        let attr =
            gnndrive_telemetry::aggregate_attribution(&[gnndrive_telemetry::BatchAttribution {
                batch: 0,
                wall_ns: 10_000,
                sample_ns: 1_000,
                queue_extract_ns: 0,
                extract_ns: 5_000,
                queue_train_ns: 0,
                train_ns: 4_000,
                waits: w,
                io_queue_ns: 400,
                io_service_ns: 600,
            }]);
        let summary = gnndrive_telemetry::HistSummary {
            count: 10,
            mean_ns: 1_000.0,
            p50_ns: 900,
            p95_ns: 1_800,
            p99_ns: 1_900,
            max_ns: 2_000,
        };
        let mut stages = Json::obj();
        for stage in PIPELINE_STAGES {
            stages.set(stage, summary.to_json());
        }
        let mut doc = Json::obj();
        doc.set("schema_version", BENCH_SCHEMA_VERSION.into())
            .set("kind", "bench_trajectory".into())
            .set("scenario", "tight_memory".into())
            .set("config", "test".into())
            .set("epoch_secs", 0.5.into())
            .set("batches", 10u64.into())
            .set("cache_hit_rate", 0.75.into())
            .set("stages", stages)
            .set("attribution", attr.to_json());
        doc
    }

    #[test]
    fn suite_is_pinned_and_distinct() {
        let suite = suite();
        assert_eq!(suite.len(), 3);
        let names: Vec<_> = suite.iter().map(|t| t.name).collect();
        assert_eq!(names, ["tight_memory", "compute_heavy", "balanced"]);
        let tight = &suite[0].scenario;
        let roomy = &suite[1].scenario;
        assert!(tight.fb_slots_override.unwrap() < roomy.fb_slots_override.unwrap());
        // Same code path: only the config differs.
        assert_eq!(tight.model, roomy.model);
        assert_eq!(tight.batch_size, roomy.batch_size);
    }

    #[test]
    fn valid_doc_passes_validation() {
        validate_bench(&sample_doc()).unwrap();
    }

    #[test]
    fn validation_rejects_broken_docs() {
        let mut doc = sample_doc();
        doc.set("schema_version", 99u64.into());
        assert!(validate_bench(&doc).unwrap_err().contains("schema_version"));

        let mut doc = sample_doc();
        doc.set("batches", 0u64.into());
        assert!(validate_bench(&doc).is_err());

        let mut doc = sample_doc();
        doc.set("cache_hit_rate", 1.5.into());
        assert!(validate_bench(&doc).is_err());

        let mut doc = sample_doc();
        doc.set("stages", Json::obj());
        assert!(validate_bench(&doc).unwrap_err().contains("missing stage"));

        // A doc claiming a verdict its attribution does not support fails.
        let mut doc = sample_doc();
        doc.set("expected_verdict", "memory_contention_bound".into());
        assert!(validate_bench(&doc).unwrap_err().contains("verdict"));
    }

    #[test]
    fn compare_flags_only_regressions_beyond_threshold() {
        let base = sample_doc();
        let mut cur = sample_doc();
        cur.set("epoch_secs", 0.6.into()); // +20%
        assert!(compare(&base, &cur, 0.5).unwrap().is_empty());
        cur.set("epoch_secs", 1.0.into()); // +100%
        let regs = compare(&base, &cur, 0.5).unwrap();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "epoch_secs");
        // Improvements never flag.
        cur.set("epoch_secs", 0.1.into());
        assert!(compare(&base, &cur, 0.5).unwrap().is_empty());
    }

    #[test]
    fn compare_refuses_mismatched_docs() {
        let base = sample_doc();
        let mut cur = sample_doc();
        cur.set("scenario", "balanced".into());
        assert!(compare(&base, &cur, 0.5).is_err());
        let mut cur = sample_doc();
        cur.set("schema_version", 2u64.into());
        assert!(compare(&base, &cur, 0.5).is_err());
    }
}
