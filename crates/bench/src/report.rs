//! Plain-text table and series output, shaped like the paper's figures.

/// One table row: a label plus one cell per column.
#[derive(Debug, Clone)]
pub struct Row {
    pub label: String,
    pub cells: Vec<String>,
}

impl Row {
    pub fn new(label: impl Into<String>) -> Self {
        Row {
            label: label.into(),
            cells: Vec::new(),
        }
    }

    pub fn cell(mut self, v: impl Into<String>) -> Self {
        self.cells.push(v.into());
        self
    }

    pub fn secs(mut self, v: f64) -> Self {
        self.cells.push(format!("{v:.3}"));
        self
    }
}

/// Print a fixed-width table: `title`, a header row, then data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Row]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    let label_w = rows
        .iter()
        .map(|r| r.label.len())
        .chain(std::iter::once(8))
        .max()
        .unwrap();
    for r in rows {
        for (i, c) in r.cells.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    print!("{:label_w$}", "");
    for (h, w) in header.iter().zip(&widths) {
        print!("  {h:>w$}");
    }
    println!();
    for r in rows {
        print!("{:label_w$}", r.label);
        for (i, c) in r.cells.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(8);
            print!("  {c:>w$}");
        }
        println!();
    }
}

/// Print an (x, y…) series, one line per x (the paper's line charts).
pub fn print_series(title: &str, x_name: &str, series_names: &[&str], points: &[(f64, Vec<f64>)]) {
    println!("\n== {title} ==");
    print!("{x_name:>10}");
    for n in series_names {
        print!("  {n:>14}");
    }
    println!();
    for (x, ys) in points {
        print!("{x:>10.3}");
        for y in ys {
            print!("  {y:>14.4}");
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_compose() {
        let r = Row::new("a").cell("1").secs(2.5);
        assert_eq!(r.cells, vec!["1".to_string(), "2.500".to_string()]);
        // Printing should not panic on ragged rows.
        print_table("t", &["x", "y"], &[r, Row::new("b").cell("only")]);
        print_series("s", "n", &["a"], &[(1.0, vec![2.0])]);
    }
}
