//! Experimental points and uniform system construction.

use gnndrive_baselines::{Ginex, GinexConfig, MariusConfig, MariusGnn, PygPlus, PygPlusConfig};
use gnndrive_core::{GnnDriveConfig, Pipeline, StackConfig, TrainingSystem};
use gnndrive_device::GpuDevice;
use gnndrive_graph::{catalog::scaled_memory_budget, Dataset, MiniDataset};
use gnndrive_nn::ModelKind;
use gnndrive_storage::{MemoryGovernor, PageCache, SimSsd, SsdProfile};
use gnndrive_sync::{LockRank, OrderedMutex};
use std::collections::HashMap;
use std::sync::Arc;

/// Harness knobs from the environment (see crate docs).
#[derive(Debug, Clone)]
pub struct EnvKnobs {
    pub scale: f64,
    pub max_batches: Option<usize>,
    pub epochs: u64,
    pub full: bool,
}

/// Read the `REPRO_*` environment variables.
pub fn env_knobs() -> EnvKnobs {
    let full = std::env::var("REPRO_FULL")
        .map(|v| v == "1")
        .unwrap_or(false);
    let scale = std::env::var("REPRO_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let max_batches = if full {
        None
    } else {
        Some(
            std::env::var("REPRO_MAX_BATCHES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(12),
        )
    };
    let epochs = std::env::var("REPRO_EPOCHS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    EnvKnobs {
        scale,
        max_batches,
        epochs,
        full,
    }
}

/// One experimental point.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub dataset: MiniDataset,
    /// Extra node/edge scale multiplier on the mini analog.
    pub scale: f64,
    /// Feature dimension (paper default 128; MAG240M 768).
    pub dim: usize,
    pub model: ModelKind,
    pub hidden: usize,
    /// Paper-scale host memory in GB (scaled to MiB by the governor).
    pub memory_gb: u64,
    pub batch_size: usize,
    pub fanouts: Vec<usize>,
    pub ssd: SsdProfile,
    /// Override GNNDrive's feature-buffer slot count (Fig 12 sweeps it).
    pub fb_slots_override: Option<usize>,
    /// Run GNNDrive's synchronous-extraction ablation instead of the
    /// asynchronous two-phase path (§4.2; the trajectory suite exercises
    /// attribution under both extractor modes).
    pub sync_extract: bool,
}

impl Scenario {
    /// The paper's default configuration for `dataset`: dim 128 (768 for
    /// MAG240M), GraphSAGE, 32 GB host memory, fanouts scaled from the
    /// paper's (10,10,10) to (4,4,4) and batch from 1000 to 32 (see
    /// DESIGN.md on batch-subsystem scaling).
    pub fn default_for(dataset: MiniDataset, knobs: &EnvKnobs) -> Self {
        let spec = dataset.spec();
        Scenario {
            dataset,
            scale: knobs.scale,
            dim: spec.feat_dim,
            model: ModelKind::GraphSage,
            hidden: 16,
            memory_gb: 32,
            batch_size: 32,
            fanouts: vec![4, 4, 4],
            ssd: SsdProfile::pm883_repro(),
            fb_slots_override: None,
            sync_extract: false,
        }
    }

    /// Host budget in bytes, scaled with the dataset scale so the
    /// dataset-to-memory ratio stays at the paper's value.
    pub fn budget_bytes(&self) -> u64 {
        let base = scaled_memory_budget(self.memory_gb) as f64;
        // Feature bytes scale with dim relative to the analog's default.
        (base * self.scale) as u64
    }

    /// The shared storage-stack knobs of this experimental point, in the
    /// form both the pipeline builder ([`PipelineBuilder::with_stack`]
    /// [`gnndrive_core::PipelineBuilder::with_stack`]) and the serving
    /// tier's `ServeConfig` consume — one struct, so a trainer and a
    /// server co-located on this scenario cannot drift apart on them.
    pub fn stack(&self) -> StackConfig {
        StackConfig::default()
            .with_memory_budget(self.budget_bytes())
            .with_fanouts(self.fanouts.clone())
            .with_batch_size(self.batch_size)
    }

    fn dataset_key(&self) -> DatasetKey {
        (
            self.dataset.name().to_string(),
            self.dim,
            (self.scale * 1_000_000.0) as u64,
            // The SimSsd lives inside the cached Dataset, so the profile
            // must be part of the key — otherwise a scenario's `ssd`
            // override is silently dropped whenever an earlier scenario
            // already built the same graph (the trajectory suite mixes
            // profiles over one graph).
            format!("{}:{}", self.ssd.name, self.ssd.read_latency.as_nanos()),
        )
    }
}

type DatasetKey = (String, usize, u64, String);
static DATASET_CACHE: OrderedMutex<Option<HashMap<DatasetKey, Arc<Dataset>>>> =
    OrderedMutex::new(LockRank::Pipeline, None);

/// Build (or fetch from the process cache) the dataset of a scenario.
/// Each cached dataset owns its own simulated SSD.
pub fn dataset_for(sc: &Scenario) -> Arc<Dataset> {
    let key = sc.dataset_key();
    let mut cache = DATASET_CACHE.lock();
    let map = cache.get_or_insert_with(HashMap::new);
    if let Some(ds) = map.get(&key) {
        return Arc::clone(ds);
    }
    let spec = sc.dataset.spec_scaled(sc.scale).with_dim(sc.dim);
    let ssd = SimSsd::new(sc.ssd.clone());
    let ds = Arc::new(Dataset::build(spec, ssd));
    map.insert(key, Arc::clone(&ds));
    ds
}

/// The five systems the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    GnnDriveGpu,
    GnnDriveCpu,
    PygPlus,
    Ginex,
    Marius,
}

impl SystemKind {
    pub const MAIN_FOUR: [SystemKind; 4] = [
        SystemKind::PygPlus,
        SystemKind::Ginex,
        SystemKind::GnnDriveGpu,
        SystemKind::GnnDriveCpu,
    ];

    pub fn name(self) -> &'static str {
        match self {
            SystemKind::GnnDriveGpu => "GNNDrive-GPU",
            SystemKind::GnnDriveCpu => "GNNDrive-CPU",
            SystemKind::PygPlus => "PyG+",
            SystemKind::Ginex => "Ginex",
            SystemKind::Marius => "MariusGNN",
        }
    }
}

/// Construct a system for a scenario over `ds`. Every system gets its own
/// governor (the host-memory budget), page cache, and device, so sweep
/// points are independent. Returns `Err(reason)` on OOM at construction,
/// which the harness reports like the paper reports OOM cells.
pub fn build_system(
    kind: SystemKind,
    sc: &Scenario,
    ds: &Arc<Dataset>,
) -> Result<Box<dyn TrainingSystem>, String> {
    let governor = MemoryGovernor::new(sc.budget_bytes());
    let cache = PageCache::new(Arc::clone(&ds.ssd), Arc::clone(&governor));
    let seed = 0x5EED ^ sc.dataset.spec().seed;
    match kind {
        SystemKind::GnnDriveGpu | SystemKind::GnnDriveCpu => {
            let gpu = kind == SystemKind::GnnDriveGpu;
            build_gnndrive_pipeline(sc, ds, gpu).map(|p| Box::new(p) as Box<dyn TrainingSystem>)
        }
        SystemKind::PygPlus => {
            let cfg = PygPlusConfig {
                num_workers: 4,
                prefetch: 4,
                fanouts: sc.fanouts.clone(),
                batch_size: sc.batch_size,
                seed,
            };
            Ok(Box::new(PygPlus::new(
                Arc::clone(ds),
                sc.model,
                sc.hidden,
                cfg,
                GpuDevice::rtx3090(),
                governor,
                cache,
            )))
        }
        SystemKind::Ginex => {
            // Paper defaults: 6 GB neighbor + 24 GB feature cache at 32 GB
            // memory; for other budgets the two caches take ≥85% of it
            // (§5 "Memory Capacity").
            let budget = sc.budget_bytes();
            let (neigh, feat) = if sc.memory_gb == 32 {
                (budget * 6 / 32, budget * 24 / 32)
            } else {
                (budget * 17 / 100, budget * 68 / 100)
            };
            let cfg = GinexConfig {
                superbatch_size: 25,
                neighbor_cache_bytes: neigh,
                feature_cache_bytes: feat,
                io_threads: 8,
                num_samplers: 4,
                fanouts: sc.fanouts.clone(),
                batch_size: sc.batch_size,
                seed,
            };
            Ginex::new(
                Arc::clone(ds),
                sc.model,
                sc.hidden,
                cfg,
                GpuDevice::rtx3090(),
                governor,
                cache,
            )
            .map(|g| Box::new(g) as Box<dyn TrainingSystem>)
            .map_err(|e| format!("OOM: {e}"))
        }
        SystemKind::Marius => {
            let cfg = MariusConfig {
                num_partitions: 12,
                buffer_partitions: 4,
                fanouts: sc.fanouts.clone(),
                batch_size: sc.batch_size,
                seed,
            };
            MariusGnn::new(
                Arc::clone(ds),
                sc.model,
                sc.hidden,
                cfg,
                GpuDevice::rtx3090(),
                governor,
            )
            .map(|m| Box::new(m) as Box<dyn TrainingSystem>)
            .map_err(|e| format!("OOM: {e}"))
        }
    }
}

/// Construct a concrete GNNDrive [`Pipeline`] for a scenario — the same
/// configuration [`build_system`] uses, but returning the concrete type so
/// callers reach the checkpoint/resume API
/// ([`Pipeline::checkpoint`] / [`Pipeline::restore`] /
/// [`Pipeline::train_epoch_range`]) the `TrainingSystem` trait does not
/// expose.
pub fn build_gnndrive_pipeline(
    sc: &Scenario,
    ds: &Arc<Dataset>,
    gpu: bool,
) -> Result<Pipeline, String> {
    let stack = sc.stack();
    let governor = stack.governor();
    let cache = PageCache::new(Arc::clone(&ds.ssd), Arc::clone(&governor));
    let seed = 0x5EED ^ sc.dataset.spec().seed;
    let device = if gpu {
        GpuDevice::rtx3090()
    } else {
        GpuDevice::cpu()
    };
    // Feature buffer ≈ 4 batches of worst-case unique nodes, the
    // paper's ~2.38 GB default at reproduction scale; staging is a
    // small bounded region (the point of the design). CPU mode
    // holds the buffer in host memory, so it runs 2 extractors and
    // a smaller buffer to respect the Ne × Mb reservation within
    // the host budget (§4.4).
    let extractors = if gpu { 4 } else { 2 };
    let slots = sc
        .fb_slots_override
        .unwrap_or_else(|| feature_buffer_slots_for(sc, extractors));
    // The staging buffer is deliberately small (its bound is the
    // design, §4.2); at reduced scales it shrinks with the budget.
    let staging = (sc.budget_bytes() / 32).clamp(64 * 1024, 1024 * 1024);
    let cfg = GnnDriveConfig {
        num_samplers: 4,
        num_extractors: extractors,
        feature_buffer_slots: slots,
        staging_bytes_per_extractor: staging,
        seed,
        sync_extract: sc.sync_extract,
        ..Default::default()
    };
    // `with_stack` overlays the shared knobs (fanouts, batch size, budget)
    // from the scenario's StackConfig; the explicit governor keeps the
    // page cache and the pipeline on the same instance.
    Pipeline::builder(Arc::clone(ds), device)
        .with_model(sc.model, sc.hidden)
        .with_config(cfg)
        .with_stack(&stack)
        .with_gpu_mode(gpu)
        .with_governor(governor)
        .with_page_cache(cache)
        .build()
        .map_err(|e| e.to_string())
}

/// Build `workers` identical GNNDrive pipelines for data-parallel training
/// (Fig 13). Each worker gets its own device; topology page cache and the
/// host governor are shared, as in the paper's multi-subprocess setup.
pub fn build_gnndrive_workers(
    sc: &Scenario,
    ds: &Arc<Dataset>,
    workers: usize,
    gpu: bool,
    k80_era: bool,
) -> Result<Vec<Pipeline>, String> {
    let governor = MemoryGovernor::new(sc.budget_bytes() * 8); // 256 GB-class host (paper: "not restricted")
    let cache = PageCache::new(Arc::clone(&ds.ssd), Arc::clone(&governor));
    let seed = 0xDA7A ^ sc.dataset.spec().seed;
    let extractors = if gpu { 4 } else { 2 };
    let mut out = Vec::with_capacity(workers);
    for _ in 0..workers {
        let device = match (gpu, k80_era) {
            (true, true) => GpuDevice::k80(),
            (true, false) => GpuDevice::rtx3090(),
            (false, _) => GpuDevice::cpu(),
        };
        let cfg = GnnDriveConfig {
            num_samplers: 2,
            num_extractors: extractors,
            feature_buffer_slots: feature_buffer_slots_for(sc, extractors),
            staging_bytes_per_extractor: 1024 * 1024,
            fanouts: sc.fanouts.clone(),
            batch_size: sc.batch_size,
            seed,
            sync_extract: sc.sync_extract,
            ..Default::default()
        };
        let p = Pipeline::builder(Arc::clone(ds), device)
            .with_model(sc.model, sc.hidden)
            .with_config(cfg)
            .with_gpu_mode(gpu)
            .with_governor(Arc::clone(&governor))
            .with_page_cache(Arc::clone(&cache))
            .build()
            .map_err(|e| e.to_string())?;
        out.push(p);
    }
    Ok(out)
}

/// Worst-case unique nodes of one mini-batch (`Mb` in the paper's
/// deadlock reservation): batch_size × Σ fanout products, plus the seeds.
pub fn worst_case_batch_nodes(sc: &Scenario) -> usize {
    let per_seed: usize = sc
        .fanouts
        .iter()
        .scan(1usize, |acc, &f| {
            *acc *= f;
            Some(*acc)
        })
        .sum::<usize>()
        + 1;
    sc.batch_size * per_seed
}

/// Feature-buffer sizing: ≥ Ne × Mb for the deadlock reservation (§4.2),
/// then rounded up a power of two — about 4 worst-case batches at the
/// default Ne = 4, mirroring the paper's ~2.38 GB default (≈ 4.2 × Mb).
pub fn feature_buffer_slots_for(sc: &Scenario, extractors: usize) -> usize {
    let mb = worst_case_batch_nodes(sc).min(sc.dataset.spec_scaled(sc.scale).num_nodes);
    (extractors * mb).next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knobs() -> EnvKnobs {
        EnvKnobs {
            scale: 0.05,
            max_batches: Some(2),
            epochs: 1,
            full: false,
        }
    }

    #[test]
    fn dataset_cache_reuses_instances() {
        let sc = Scenario::default_for(MiniDataset::Twitter, &knobs());
        let a = dataset_for(&sc);
        let b = dataset_for(&sc);
        assert!(Arc::ptr_eq(&a, &b));
        let mut sc2 = sc.clone();
        sc2.dim = 64;
        let c = dataset_for(&sc2);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn all_five_systems_build_and_run_a_batch() {
        let sc = Scenario {
            memory_gb: 128, // roomy so every system builds at tiny scale
            ..Scenario::default_for(MiniDataset::Twitter, &knobs())
        };
        let ds = dataset_for(&sc);
        for kind in [
            SystemKind::GnnDriveGpu,
            SystemKind::GnnDriveCpu,
            SystemKind::PygPlus,
            SystemKind::Ginex,
            SystemKind::Marius,
        ] {
            let mut sys = build_system(kind, &sc, &ds)
                .unwrap_or_else(|e| panic!("{} failed to build: {e}", kind.name()));
            let r = sys.train_epoch(0, Some(2));
            assert!(r.error.is_none(), "{}: {:?}", kind.name(), r.error);
            assert!(r.batches >= 1, "{} ran no batches", kind.name());
            assert!(r.loss.is_finite());
        }
    }

    #[test]
    fn budget_scales_with_dataset_scale() {
        let mut sc = Scenario::default_for(MiniDataset::Papers100M, &knobs());
        sc.scale = 1.0;
        let full = sc.budget_bytes();
        sc.scale = 0.25;
        assert_eq!(sc.budget_bytes(), full / 4);
    }

    #[test]
    fn feature_buffer_covers_reservation() {
        let sc = Scenario::default_for(MiniDataset::Papers100M, &knobs());
        assert!(feature_buffer_slots_for(&sc, 4) >= 4 * worst_case_batch_nodes(&sc));
        assert!(feature_buffer_slots_for(&sc, 2) >= 2 * worst_case_batch_nodes(&sc));
    }
}
