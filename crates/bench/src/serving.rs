//! The `serving_mixed` scenario: an online inference tier holding its
//! latency SLO while a training epoch soaks the same storage stack.
//!
//! Both sides share one simulated SSD, one memory governor, and one page
//! cache — exactly the co-location the QoS lanes exist for: serve-lane
//! reads jump the device submission queue, and serve-lane waiters get
//! freed memory first. The chaos variant storms the feature file mid-run
//! so the serving pipeline's circuit breaker trips, requests fail *fast
//! and typed* (never silently lost), and a half-open probe recovers the
//! tier once the storm clears.

use crate::{dataset_for, feature_buffer_slots_for, Scenario};
use gnndrive_core::{GnnDriveConfig, Pipeline, TrainingSystem};
use gnndrive_device::GpuDevice;
use gnndrive_graph::Dataset;
use gnndrive_serve::{LoadGen, LoadGenConfig, ServeConfig, Server, Ticket};
use gnndrive_storage::{FaultPlan, HealthConfig, HealthState, PageCache};
use gnndrive_telemetry::RunReport;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Knobs of one `serving_mixed` run.
#[derive(Debug, Clone)]
pub struct ServingMixedConfig {
    /// Requests to issue in the measured window.
    pub requests: usize,
    /// Open-loop arrival rate (req/s); 0 = closed loop.
    pub rate_hz: f64,
    /// Simulated user population for the Zipfian load generator.
    pub users: u64,
    /// Serving latency SLO (p99 target).
    pub slo: Duration,
    /// Micro-batch coalescing deadline.
    pub coalesce: Duration,
    /// Storm the feature file mid-run and require breaker recovery.
    pub chaos: bool,
    /// Load-generator seed.
    pub seed: u64,
}

impl Default for ServingMixedConfig {
    fn default() -> Self {
        ServingMixedConfig {
            requests: 160,
            rate_hz: 150.0,
            users: 1_000_000,
            slo: Duration::from_millis(250),
            coalesce: Duration::from_millis(2),
            chaos: false,
            seed: 0xC0FFEE,
        }
    }
}

/// What one `serving_mixed` run produced.
#[derive(Debug)]
pub struct ServingMixedReport {
    /// The serving tier's own accounting and latency distributions.
    pub serve: gnndrive_serve::ServeReport,
    /// Training throughput alone on the stack (batches/s).
    pub solo_throughput: f64,
    /// Training throughput while serving rode along (batches/s).
    pub mixed_throughput: f64,
    /// `mixed / solo` — the acceptance bar is ≥ 0.75.
    pub training_ratio: f64,
    /// Chaos only: the breaker was observed open during the storm.
    pub saw_circuit_open: bool,
    /// Chaos only: a request completed `Ok` again after the storm —
    /// the breaker closed *and* the tier demonstrably served.
    pub recovered: bool,
    /// Whether this was the chaos variant.
    pub chaos: bool,
    /// The SLO the run was held against.
    pub slo: Duration,
}

impl ServingMixedReport {
    /// Acceptance check; returns every violated property (empty = pass).
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if !self.serve.balanced() {
            v.push(format!(
                "lost requests: submitted {} != completed {} + failed {}",
                self.serve.submitted, self.serve.completed, self.serve.failed
            ));
        }
        if self.chaos {
            if !self.saw_circuit_open {
                v.push("chaos storm never tripped the circuit breaker".into());
            }
            if !self.recovered {
                v.push("tier never served a request again after the storm cleared".into());
            }
            if self.serve.failed == 0 {
                v.push("storm produced no typed request failures".into());
            }
        } else {
            // SLO and throughput bars only bind on the clean variant: the
            // chaos storm is *supposed* to blow the tail out.
            if !self.serve.meets_slo(self.slo) {
                v.push(format!(
                    "p99 {}ms over the {}ms SLO",
                    self.serve.latency.p99_ns / 1_000_000,
                    self.slo.as_millis()
                ));
            }
            if self.training_ratio < 0.75 {
                v.push(format!(
                    "training throughput fell to {:.0}% of solo (floor 75%)",
                    self.training_ratio * 100.0
                ));
            }
            if self.serve.failed > 0 {
                v.push(format!("{} requests failed on a clean stack", self.serve.failed));
            }
        }
        v
    }

    /// Fold everything into a [`RunReport`] under the `serve.*` namespace.
    pub fn fold_into(&self, report: &mut RunReport) {
        self.serve.fold_into(report);
        report.add_scalar("serve.training_ratio", self.training_ratio);
        report.add_scalar("serve.solo_throughput", self.solo_throughput);
        report.add_scalar("serve.mixed_throughput", self.mixed_throughput);
        report.add_label("serve.chaos", if self.chaos { "on" } else { "off" });
        report.add_label(
            "serve.recovered",
            if self.recovered { "yes" } else { "no" },
        );
    }
}

/// Build the training/serving pipeline pair on one shared stack: same
/// dataset (thus same simulated SSD), same governor, same page cache.
fn build_pair(sc: &Scenario, ds: &Arc<Dataset>) -> Result<(Pipeline, Pipeline), String> {
    let stack = sc.stack();
    let governor = stack.governor();
    let cache = PageCache::new(Arc::clone(&ds.ssd), Arc::clone(&governor));
    let seed = 0x5E4E ^ sc.dataset.spec().seed;
    let trainer_cfg = GnnDriveConfig {
        num_samplers: 2,
        num_extractors: 2,
        feature_buffer_slots: feature_buffer_slots_for(sc, 2),
        staging_bytes_per_extractor: 256 * 1024,
        seed,
        ..Default::default()
    };
    let trainer = Pipeline::builder(Arc::clone(ds), GpuDevice::rtx3090())
        .with_model(sc.model, sc.hidden)
        .with_config(trainer_cfg)
        .with_stack(&stack)
        .with_governor(Arc::clone(&governor))
        .with_page_cache(Arc::clone(&cache))
        .build()
        .map_err(|e| format!("trainer: {e}"))?;
    // The serving pipeline runs with the breaker armed: under a device
    // error storm it degrades to sync-path reads, then fails fast, then
    // probes its way back — requests always get a typed answer.
    let server_cfg = GnnDriveConfig {
        num_samplers: 1,
        num_extractors: 1,
        feature_buffer_slots: feature_buffer_slots_for(sc, 2),
        staging_bytes_per_extractor: 256 * 1024,
        seed: seed ^ 1,
        ..Default::default()
    };
    let server = Pipeline::builder(Arc::clone(ds), GpuDevice::rtx3090())
        .with_model(sc.model, sc.hidden)
        .with_config(server_cfg)
        .with_stack(&stack.clone().with_health(HealthConfig::enabled()))
        .with_governor(governor)
        .with_page_cache(cache)
        .build()
        .map_err(|e| format!("server: {e}"))?;
    Ok((trainer, server))
}

/// Run the scenario: measure solo training throughput, then restart
/// training alongside a serving tier fed by the Zipfian load generator,
/// and (optionally) storm the device mid-run.
pub fn run_serving_mixed(
    sc: &Scenario,
    cfg: &ServingMixedConfig,
) -> Result<ServingMixedReport, String> {
    let ds = dataset_for(sc);

    // Solo baseline: the training pipeline with the stack to itself.
    let mut solo = crate::build_gnndrive_pipeline(sc, &ds, true)?;
    let r = solo.train_epoch(0, Some(24));
    if let Some(e) = r.error {
        return Err(format!("solo epoch failed: {e}"));
    }
    let solo_throughput = r.batches as f64 / r.wall.as_secs_f64().max(1e-9);
    drop(solo);

    // Mixed: fresh pair on the same dataset; training soaks in a loop
    // until serving finishes.
    let (trainer, server_pipeline) = build_pair(sc, &ds)?;
    let health = Arc::clone(server_pipeline.device_health());
    let server = Server::start(
        server_pipeline,
        ServeConfig::default()
            .with_stack(sc.stack())
            .with_coalesce_deadline(cfg.coalesce)
            .with_slo_deadline(cfg.slo),
    );

    let stop = AtomicBool::new(false);
    let num_nodes = ds.spec.num_nodes as u64;
    let mut mixed_batches = 0usize;
    let mut saw_open = false;
    let mut recovered = false;
    let mut tickets: Vec<Ticket> = Vec::with_capacity(cfg.requests);
    let mut mixed_wall = Duration::ZERO;
    let mut soak_panicked = false;

    std::thread::scope(|s| {
        let soak = s.spawn(|| {
            let mut trainer = trainer;
            let mut batches = 0usize;
            let mut epoch = 1;
            // Same per-epoch batch cap as the solo baseline: per-epoch
            // worker spin-up costs the same on both sides of the ratio.
            while !stop.load(Ordering::Acquire) {
                let r = trainer.train_epoch(epoch, Some(24));
                batches += r.batches;
                epoch += 1;
            }
            batches
        });

        let t0 = Instant::now();
        let arrivals = LoadGen::new(LoadGenConfig {
            users: cfg.users,
            num_nodes,
            rate_hz: cfg.rate_hz,
            requests: cfg.requests,
            seed: cfg.seed,
        });
        let storm_at = cfg.requests / 3;
        let clear_at = cfg.requests * 2 / 3;
        for (i, a) in arrivals.enumerate() {
            if cfg.chaos && i == storm_at {
                ds.ssd.set_fault_plan(
                    FaultPlan::new(cfg.seed ^ 0xBAD)
                        .with_read_fault_prob(1.0)
                        .on_file(ds.features_file.id),
                );
            }
            if cfg.chaos && i == clear_at {
                ds.ssd.clear_faults();
            }
            if !a.delay.is_zero() {
                std::thread::sleep(a.delay);
            }
            match server.submit(a.seed_node) {
                Ok(t) => tickets.push(t),
                Err(_rejected) => {} // counted by the server as rejected
            }
            if health.state() == HealthState::CircuitOpen {
                saw_open = true;
            }
        }
        // Drain every admitted request: each must resolve Ok or typed Err.
        for t in tickets.drain(..) {
            let _ = t.wait();
        }
        // Chaos: keep poking the tier until a request completes again
        // (bounded — the breaker cooldown is 250 ms). The half-open probe
        // closing the circuit is necessary but not sufficient: the probe's
        // own batch can still fail at the planner level, so recovery is
        // only claimed once a post-storm request resolves `Ok`.
        if cfg.chaos {
            let deadline = Instant::now() + Duration::from_secs(5);
            while Instant::now() < deadline {
                if let Ok(t) = server.submit((cfg.seed % num_nodes) as u32) {
                    if t.wait().is_ok() && saw_open {
                        recovered = true;
                        break;
                    }
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
        mixed_wall = t0.elapsed();
        stop.store(true, Ordering::Release);
        match soak.join() {
            Ok(b) => mixed_batches = b,
            Err(_) => soak_panicked = true,
        }
    });
    if soak_panicked {
        return Err("training soak thread panicked".into());
    }

    let (_pipeline, serve) = server.shutdown().map_err(|e| format!("shutdown: {e:?}"))?;
    let mixed_throughput = mixed_batches as f64 / mixed_wall.as_secs_f64().max(1e-9);
    Ok(ServingMixedReport {
        serve,
        solo_throughput,
        mixed_throughput,
        training_ratio: mixed_throughput / solo_throughput.max(1e-9),
        saw_circuit_open: saw_open,
        recovered,
        chaos: cfg.chaos,
        slo: cfg.slo,
    })
}
