//! Experiment harness for the GNNDrive reproduction.
//!
//! One binary per table/figure of the paper lives in `src/bin/`; this
//! library provides what they share: a [`Scenario`] describing one
//! experimental point (dataset, model, dimension, memory budget, batch
//! size, device), uniform constructors for all five systems under test,
//! a process-wide dataset cache (building a dataset is expensive and every
//! sweep reuses them), and plain-text table/series printers that emit the
//! same rows the paper reports.
//!
//! Scaling: datasets are the ÷1000 analogs of Table 1 (see
//! `gnndrive_graph::catalog`), host-memory budgets map paper-GB → MiB, and
//! the SSD runs the `pm883_repro` profile (see `SsdProfile::pm883_repro`
//! for why it is ~4× slower than the pm883 model). Harness knobs come from
//! environment variables so `cargo run --bin repro_*` works bare:
//!
//! * `REPRO_SCALE` — extra dataset scale multiplier (default 1.0)
//! * `REPRO_MAX_BATCHES` — measured mini-batches per epoch (default 12)
//! * `REPRO_EPOCHS` — measured epochs per point (default 1)
//! * `REPRO_FULL=1` — full-size mini datasets, whole epochs (slow)
//! * `REPRO_REPORT_DIR` — where JSON run reports land (default
//!   `results/reports`; see [`artifacts`])

pub mod artifacts;
pub mod cache_sweep;
pub mod crashsim;
pub mod report;
pub mod scenario;
pub mod serving;
pub mod trajectory;

pub use artifacts::{
    collect_report, report_dir, scenario_desc, slug, write_report, PIPELINE_STAGES,
};
pub use cache_sweep::{
    compare_cache_sweep, hit_rate_delta_rows, hit_rate_rows, run_sweep, sweep_path,
    trace_artifact_path, validate_cache_sweep, SweepOutcome, CACHE_SWEEP_SCHEMA_VERSION,
    SWEEP_BUDGET_FRACTIONS, SWEEP_POLICIES,
};
pub use crashsim::{
    crash_sweep_path, run_crash_sweep, sweep_doc, validate_crash_sweep, CrashSweepOutcome,
    ScheduleOutcome, CRASH_SWEEP_SCHEMA_VERSION,
};
pub use report::{print_series, print_table, Row};
pub use scenario::{
    build_gnndrive_pipeline, build_system, dataset_for, env_knobs, feature_buffer_slots_for,
    worst_case_batch_nodes, EnvKnobs, Scenario, SystemKind,
};
pub use serving::{run_serving_mixed, ServingMixedConfig, ServingMixedReport};
