//! Figure 2 — sampling time under memory contention.
//!
//! For PyG+, Ginex, and GNNDrive, measures per-epoch sampling time in two
//! configurations over feature dimensions 64–512:
//!
//! * `-only`: the sample stage runs alone (no extraction pressure);
//! * `-all`: sampling time measured *while the full SET pipeline runs* —
//!   extract-side memory pressure evicts topology pages and slows the
//!   samplers.
//!
//! The paper's shape: PyG+-all ≫ PyG+-only and the gap widens with
//! dimension (5.4× at dim 128); Ginex-only ≈ Ginex-all; GNNDrive's
//! sampling barely moves with dimension.

use gnndrive_bench::{build_system, dataset_for, env_knobs, print_series, Scenario, SystemKind};
use gnndrive_graph::MiniDataset;

fn main() {
    let knobs = env_knobs();
    let dims = [64usize, 128, 256, 512];
    let systems = [
        SystemKind::PygPlus,
        SystemKind::Ginex,
        SystemKind::GnnDriveGpu,
    ];
    let mut points = Vec::new();
    for &dim in &dims {
        let mut ys = Vec::new();
        for kind in systems {
            let mut sc = Scenario::default_for(MiniDataset::Papers100M, &knobs);
            sc.dim = dim;
            let ds = dataset_for(&sc);

            // `-only`: pure sampling epoch.
            let only = match build_system(kind, &sc, &ds) {
                Ok(mut sys) => sys.sample_only_epoch(0, knobs.max_batches).as_secs_f64(),
                Err(_) => f64::NAN,
            };
            // `-all`: run the full pipeline, report its accumulated
            // sample-stage time.
            let all = match build_system(kind, &sc, &ds) {
                Ok(mut sys) => {
                    let r = sys.train_epoch(0, knobs.max_batches);
                    if r.error.is_some() {
                        f64::NAN
                    } else {
                        r.sample_secs
                    }
                }
                Err(_) => f64::NAN,
            };
            ys.push(only);
            ys.push(all);
            eprintln!("dim {dim} {}: only={only:.3}s all={all:.3}s", kind.name());
        }
        points.push((dim as f64, ys));
    }
    print_series(
        "Fig 2: sampling time (s) vs feature dimension, papers100m-mini",
        "dim",
        &[
            "PyG+-only",
            "PyG+-all",
            "Ginex-only",
            "Ginex-all",
            "GNNDrive-only",
            "GNNDrive-all",
        ],
        &points,
    );
}
