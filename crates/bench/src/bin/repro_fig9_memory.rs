//! Figure 9 — epoch runtime vs host-memory capacity (8–128 GB, scaled),
//! with the large feature dimension (512).
//!
//! Paper shape: all systems improve with more memory; PyG+ is the most
//! memory-sensitive (page cache); Ginex OOMs at 8 GB on Twitter; GNNDrive
//! barely moves beyond 32 GB because its extract-side footprint is fixed;
//! even at 8 GB GNNDrive-GPU stays far ahead of PyG+.

use gnndrive_bench::{build_system, dataset_for, env_knobs, print_series, Scenario, SystemKind};
use gnndrive_graph::MiniDataset;

fn main() {
    let knobs = env_knobs();
    let memories = [8u64, 16, 32, 64, 128];
    let datasets = match std::env::var("REPRO_DATASETS") {
        Ok(v) => MiniDataset::ALL
            .into_iter()
            .filter(|d| v.split(',').any(|s| s.trim() == d.name()))
            .collect(),
        Err(_) => vec![MiniDataset::Papers100M, MiniDataset::Twitter],
    };
    for dataset in datasets {
        let mut points = Vec::new();
        for &gb in &memories {
            let mut sc = Scenario::default_for(dataset, &knobs);
            sc.dim = 512;
            sc.memory_gb = gb;
            let ds = dataset_for(&sc);
            let mut ys = Vec::new();
            for kind in SystemKind::MAIN_FOUR {
                let y = match build_system(kind, &sc, &ds) {
                    Ok(mut sys) => {
                        let r = sys.train_epoch(0, knobs.max_batches);
                        match r.error {
                            Some(e) => {
                                eprintln!("{} {}GB {}: {e}", dataset.name(), gb, kind.name());
                                f64::NAN
                            }
                            None => r.extrapolated_wall().as_secs_f64(),
                        }
                    }
                    Err(e) => {
                        eprintln!("{} {}GB {}: {e}", dataset.name(), gb, kind.name());
                        f64::NAN // the paper's OOM cells
                    }
                };
                ys.push(y);
            }
            points.push((gb as f64, ys));
        }
        print_series(
            &format!(
                "Fig 9: epoch time (s) vs memory (paper-GB), dim 512 — {} (NaN = OOM)",
                dataset.name()
            ),
            "mem GB",
            &["PyG+", "Ginex", "GNNDrive-GPU", "GNNDrive-CPU"],
            &points,
        );
    }
}
