//! Figure 3 — CPU utilization, GPU utilization, and I/O-wait ratio over a
//! window of three epochs, for PyG+, Ginex, and MariusGNN.
//!
//! Paper shape: PyG+ and Ginex show long high-iowait phases with CPU and
//! GPU near idle (synchronous loading); MariusGNN has a large iowait burst
//! at the start of each epoch (data preparation) and low iowait inside the
//! epoch.

use gnndrive_bench::{
    build_system, collect_report, dataset_for, env_knobs, print_series, scenario_desc, slug,
    write_report, Scenario, SystemKind,
};
use gnndrive_graph::MiniDataset;
use gnndrive_telemetry::{reset, reset_metrics, set_gpu_count, Monitor};
use std::time::Duration;

fn main() {
    let knobs = env_knobs();
    let sc = Scenario::default_for(MiniDataset::Papers100M, &knobs);
    let ds = dataset_for(&sc);
    let epochs = 3u64;

    for kind in [SystemKind::PygPlus, SystemKind::Ginex, SystemKind::Marius] {
        match build_system(kind, &sc, &ds) {
            Ok(mut sys) => {
                reset();
                reset_metrics();
                set_gpu_count(1);
                let monitor = Monitor::start(Duration::from_millis(100));
                for e in 0..epochs {
                    let r = sys.train_epoch(e, knobs.max_batches);
                    if let Some(err) = r.error {
                        eprintln!("{}: {err}", kind.name());
                        break;
                    }
                }
                let series = monitor.stop();
                let points: Vec<(f64, Vec<f64>)> = series
                    .iter()
                    .map(|p| {
                        (
                            p.t_secs,
                            vec![p.cpu_util * 100.0, p.gpu_util * 100.0, p.io_wait * 100.0],
                        )
                    })
                    .collect();
                print_series(
                    &format!("Fig 3: utilization over 3 epochs — {}", kind.name()),
                    "t (s)",
                    &["CPU %", "GPU %", "iowait %"],
                    &points,
                );
                // Aggregate summary row (easier to eyeball than the series).
                let n = series.len().max(1) as f64;
                let (c, g, w) = series.iter().fold((0.0, 0.0, 0.0), |acc, p| {
                    (acc.0 + p.cpu_util, acc.1 + p.gpu_util, acc.2 + p.io_wait)
                });
                println!(
                    "mean: cpu {:.1}%  gpu {:.1}%  iowait {:.1}%",
                    c / n * 100.0,
                    g / n * 100.0,
                    w / n * 100.0
                );
                let mut report = collect_report(
                    &format!("fig3_utilization.{}", slug(kind.name())),
                    &scenario_desc(&sc),
                    series,
                );
                report.add_scalar("epochs", epochs as f64);
                report.add_scalar("mean_cpu_util", c / n);
                report.add_scalar("mean_gpu_util", g / n);
                report.add_scalar("mean_io_wait", w / n);
                write_report(&report);
            }
            Err(e) => eprintln!("{}: build failed: {e}", kind.name()),
        }
    }
}
