//! `serving_mixed` — the online serving tier under concurrent training.
//!
//! A training loop soaks the shared storage stack while a Zipfian load
//! generator drives the inference server; the run reports the serving
//! latency distribution against its SLO and how much training throughput
//! the co-located tier cost.
//!
//! ```sh
//! cargo run --release --bin serving_mixed            # clean variant
//! cargo run --release --bin serving_mixed -- --chaos # breaker-trip variant
//! cargo run --release --bin serving_mixed -- --check # nonzero exit on violation
//! ```

use gnndrive_bench::{
    collect_report, env_knobs, run_serving_mixed, scenario_desc, write_report, Scenario,
    ServingMixedConfig,
};
use gnndrive_graph::MiniDataset;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let chaos = args.iter().any(|a| a == "--chaos");
    let check = args.iter().any(|a| a == "--check");

    let knobs = env_knobs();
    let sc = Scenario::default_for(MiniDataset::Twitter, &knobs);
    let cfg = ServingMixedConfig {
        chaos,
        ..ServingMixedConfig::default()
    };

    let name = if chaos {
        "serving_mixed_chaos"
    } else {
        "serving_mixed"
    };
    let outcome = match run_serving_mixed(&sc, &cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{name}: {e}");
            std::process::exit(2);
        }
    };

    println!("== {name}");
    println!(
        "requests: {} submitted, {} completed, {} failed, {} rejected over {} batches",
        outcome.serve.submitted,
        outcome.serve.completed,
        outcome.serve.failed,
        outcome.serve.rejected,
        outcome.serve.batches
    );
    println!(
        "latency: p50 {:.2}ms p99 {:.2}ms (SLO {}ms, {} violations)",
        outcome.serve.latency.p50_ns as f64 / 1e6,
        outcome.serve.latency.p99_ns as f64 / 1e6,
        cfg.slo.as_millis(),
        outcome.serve.slo_violations
    );
    println!(
        "training: {:.1} batches/s solo -> {:.1} mixed ({:.0}%)",
        outcome.solo_throughput,
        outcome.mixed_throughput,
        outcome.training_ratio * 100.0
    );
    if chaos {
        println!(
            "chaos: breaker open seen: {}, recovered: {}",
            outcome.saw_circuit_open, outcome.recovered
        );
    }

    let mut report = collect_report(name, &scenario_desc(&sc), Vec::new());
    outcome.fold_into(&mut report);
    let _ = write_report(&report);

    let violations = outcome.violations();
    for v in &violations {
        eprintln!("VIOLATION: {v}");
    }
    if check && !violations.is_empty() {
        std::process::exit(1);
    }
}
