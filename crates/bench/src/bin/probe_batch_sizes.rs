use gnndrive_bench::{dataset_for, env_knobs, Scenario};
use gnndrive_graph::MiniDataset;
use gnndrive_sampling::{BatchPlan, InMemTopo, NeighborSampler};
use std::sync::Arc;

fn main() {
    let knobs = env_knobs();
    for d in [
        MiniDataset::Papers100M,
        MiniDataset::Twitter,
        MiniDataset::Friendster,
        MiniDataset::Mag240M,
    ] {
        let mut sc = Scenario::default_for(d, &knobs);
        sc.scale = 1.0;
        let ds = dataset_for(&sc);
        let sampler = NeighborSampler::new(
            Arc::new(InMemTopo::new(Arc::clone(&ds.topology))),
            sc.fanouts.clone(),
        );
        let plan = BatchPlan::new(&ds.train_idx, sc.batch_size, 0, 1);
        let mut max_u = 0;
        let mut sum = 0;
        for i in 0..8.min(plan.num_batches()) {
            let s = sampler.sample(i as u64, plan.batch(i), 7);
            max_u = max_u.max(s.input_nodes.len());
            sum += s.input_nodes.len();
        }
        println!(
            "{}: nodes={} batches={} avg_unique={} max_unique={}",
            d.name(),
            ds.spec.num_nodes,
            plan.num_batches(),
            sum / 8,
            max_u
        );
    }
}
