//! Appendix B, Figure B.1 — synchronous multi-threaded I/O vs
//! asynchronous single-threaded I/O on the simulated SSD.
//!
//! Randomly reads 512 B sectors of a large file in four configurations:
//! (a) sync bandwidth vs thread count, (b) async bandwidth vs I/O depth,
//! (c) sync mean latency vs thread count, (d) async mean latency vs I/O
//! depth — each in buffered and direct modes. The paper's findings to
//! reproduce: async with one thread matches multi-threaded sync bandwidth;
//! bandwidth saturates at the device's internal parallelism; latency grows
//! with queueing; buffered vs direct narrows at depth.

use gnndrive_bench::print_series;
use gnndrive_storage::{IoRing, SimSsd, SsdProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const FILE_MB: usize = 30; // the paper's 30 GB file ÷1000
const RUN_MS: u64 = 400;

fn setup() -> (Arc<SimSsd>, gnndrive_storage::FileHandle) {
    let ssd = SimSsd::new(SsdProfile::pm883());
    let f = ssd.create_file((FILE_MB * 1024 * 1024) as u64);
    (ssd, f)
}

/// Sync random 512 B reads with `threads` workers for a fixed duration:
/// returns (bandwidth MB/s, mean latency µs).
fn run_sync(
    ssd: &Arc<SimSsd>,
    f: gnndrive_storage::FileHandle,
    threads: usize,
    direct: bool,
) -> (f64, f64) {
    let stop = Instant::now() + Duration::from_millis(RUN_MS);
    let ops = AtomicU64::new(0);
    let lat_nanos = AtomicU64::new(0);
    crossbeam::scope(|s| {
        for t in 0..threads {
            let ssd = Arc::clone(ssd);
            let ops = &ops;
            let lat_nanos = &lat_nanos;
            s.spawn(move |_| {
                let mut rng = StdRng::seed_from_u64(t as u64);
                let mut buf = vec![0u8; 512];
                let sectors = (FILE_MB * 1024 * 1024 / 512) as u64;
                while Instant::now() < stop {
                    let off = rng.gen_range(0..sectors) * 512;
                    let t0 = Instant::now();
                    if direct {
                        ssd.read_blocking(f, off, &mut buf, true).unwrap();
                    } else {
                        // Buffered sync read without a persistent cache:
                        // page-granular (4 KiB) like an uncached fault.
                        let mut page = vec![0u8; 4096];
                        let poff = off / 4096 * 4096;
                        let n = page.len().min((f.len - poff) as usize);
                        ssd.read_blocking(f, poff, &mut page[..n], false).unwrap();
                    }
                    ops.fetch_add(1, Ordering::Relaxed);
                    lat_nanos.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }
            });
        }
    })
    .unwrap();
    let n = ops.load(Ordering::Relaxed).max(1);
    let secs = RUN_MS as f64 / 1e3;
    (
        n as f64 * 512.0 / 1e6 / secs,
        lat_nanos.load(Ordering::Relaxed) as f64 / n as f64 / 1e3,
    )
}

/// Async random 512 B reads with one thread at `depth` in-flight requests:
/// returns (bandwidth MB/s, mean latency µs).
fn run_async(
    ssd: &Arc<SimSsd>,
    f: gnndrive_storage::FileHandle,
    depth: usize,
    direct: bool,
) -> (f64, f64) {
    let stop = Instant::now() + Duration::from_millis(RUN_MS);
    let mut rng = StdRng::seed_from_u64(42);
    let mut ring = IoRing::new(Arc::clone(ssd), depth.max(1), direct);
    let sectors = (FILE_MB * 1024 * 1024 / 512) as u64;
    let (mut ops, mut lat_nanos) = (0u64, 0u64);
    let read_len = if direct { 512 } else { 4096 };
    let prepare = |ring: &mut IoRing, rng: &mut StdRng| {
        let off = rng.gen_range(0..sectors) * 512;
        let off = if direct { off } else { off / 4096 * 4096 };
        let len = read_len.min((f.len - off) as usize);
        ring.prepare_read(f, off, len, 0).is_ok()
    };
    for _ in 0..depth {
        prepare(&mut ring, &mut rng);
    }
    ring.submit();
    while Instant::now() < stop {
        let Ok(Some(c)) = ring.wait_completion() else {
            break;
        };
        ops += 1;
        lat_nanos += c.latency.as_nanos() as u64;
        prepare(&mut ring, &mut rng);
        ring.submit();
    }
    ring.drain(|_| {}).expect("drain benchmark ring");
    let secs = RUN_MS as f64 / 1e3;
    (
        ops.max(1) as f64 * 512.0 / 1e6 / secs,
        lat_nanos as f64 / ops.max(1) as f64 / 1e3,
    )
}

fn main() {
    let (ssd, f) = setup();
    let threads = [1usize, 2, 4, 8, 16, 32, 64];
    let depths = [1usize, 2, 4, 8, 16, 32, 64, 128];

    let mut sync_points = Vec::new();
    for &t in &threads {
        let (bw_d, lat_d) = run_sync(&ssd, f, t, true);
        let (bw_b, lat_b) = run_sync(&ssd, f, t, false);
        sync_points.push((t as f64, vec![bw_d, bw_b, lat_d, lat_b]));
    }
    print_series(
        "Fig B.1 (a)+(c): synchronous I/O vs thread count",
        "threads",
        &[
            "direct MB/s",
            "buffered MB/s",
            "direct lat us",
            "buffered lat us",
        ],
        &sync_points,
    );

    let mut async_points = Vec::new();
    for &d in &depths {
        let (bw_d, lat_d) = run_async(&ssd, f, d, true);
        let (bw_b, lat_b) = run_async(&ssd, f, d, false);
        async_points.push((d as f64, vec![bw_d, bw_b, lat_d, lat_b]));
    }
    print_series(
        "Fig B.1 (b)+(d): asynchronous (ring) I/O vs I/O depth, one thread",
        "iodepth",
        &[
            "direct MB/s",
            "buffered MB/s",
            "direct lat us",
            "buffered lat us",
        ],
        &async_points,
    );

    // The paper's headline claims, checked mechanically.
    let sync1 = sync_points[0].1[0];
    let sync32 = sync_points[5].1[0];
    let async32 = async_points[5].1[0];
    println!("\nsummary:");
    println!("  sync  1 thread : {sync1:8.1} MB/s");
    println!("  sync 32 threads: {sync32:8.1} MB/s");
    println!("  async depth 32 : {async32:8.1} MB/s (single thread)");
    println!(
        "  async/multi-thread-sync ratio: {:.2} (paper: ~1, async matches)",
        async32 / sync32
    );
}
