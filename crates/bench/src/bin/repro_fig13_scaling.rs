//! Figure 13 — GNNDrive scalability with multiple devices.
//!
//! The paper's machine: eight Tesla K80s, two old Xeons, an Intel S3510
//! SSD, 256 GB host memory. Paper shape: 2 subprocesses ≈ 1.7–1.8×
//! speedup; returns diminish with more workers (gradient-sync overhead and
//! the shared SSD), flattening around 6.

use gnndrive_bench::scenario::build_gnndrive_workers;
use gnndrive_bench::{dataset_for, env_knobs, print_series, Scenario};
use gnndrive_core::{run_data_parallel, ParallelConfig};
use gnndrive_graph::MiniDataset;
use gnndrive_storage::SsdProfile;

fn main() {
    let knobs = env_knobs();
    let workers_sweep = [1usize, 2, 4, 6, 8];
    let mut sc = Scenario::default_for(MiniDataset::Mag240M, &knobs);
    sc.ssd = SsdProfile::s3510_repro();
    let ds = dataset_for(&sc);

    for gpu in [true, false] {
        let mut points = Vec::new();
        for &w in &workers_sweep {
            let run = || -> Result<f64, String> {
                let mut pipelines =
                    build_gnndrive_workers(&sc, &ds, w, gpu, true).map_err(|e| e.to_string())?;
                // Split the training set into equal segments.
                let segments =
                    gnndrive_core::parallel::split_segments(&ds.train_idx, w, sc.batch_size)
                        .map_err(|e| e.to_string())?;
                for (p, seg) in pipelines.iter_mut().zip(segments) {
                    p.set_train_segment(seg);
                }
                let pcfg = ParallelConfig {
                    workers: w,
                    ..Default::default()
                };
                let per_worker_cap = knobs.max_batches.map(|m| (m / w).max(2));
                let report = run_data_parallel(&mut pipelines, &pcfg, 0, per_worker_cap);
                for (worker, msg) in &report.failed {
                    eprintln!("{w} workers (gpu={gpu}): worker {worker} failed: {msg}");
                }
                // Extrapolate: measured wall covers cap×w batches of
                // the full epoch.
                let full: usize = report.per_worker.iter().map(|r| r.full_batches).sum();
                let done: usize = report.per_worker.iter().map(|r| r.batches).sum();
                Ok(report.epoch_wall.as_secs_f64() * full.max(1) as f64 / done.max(1) as f64)
            };
            let y = match run() {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("{w} workers (gpu={gpu}): {e}");
                    f64::NAN
                }
            };
            eprintln!("workers={w} gpu={gpu}: epoch {y:.2}s");
            points.push((w as f64, vec![y]));
        }
        print_series(
            &format!(
                "Fig 13: epoch time (s) vs workers — mag240m-mini / GraphSAGE / {} (K80-era)",
                if gpu { "GPU" } else { "CPU" }
            ),
            "workers",
            &["epoch s"],
            &points,
        );
        let base = points[0].1[0];
        let two = points[1].1[0];
        println!("speedup at 2 workers: {:.2}x (paper: 1.7-1.8x)", base / two);
    }
}
