//! `crashsim` — enumerate crash schedules over a checkpointed training
//! run and prove power-cut recovery.
//!
//! ```text
//! crashsim [--out DIR] [--seed N] [--check]
//! ```
//!
//! Runs the recording pass (uninterrupted, enumerating every crash point
//! of the persistence paths), then one armed run per schedule ordinal:
//! cut at that point, power-cut the simulated SSD, restart, recover from
//! the newest durable checkpoint slot, resume, and compare final weights
//! against the uninterrupted run. Prints one row per schedule and writes
//! `CRASH_SWEEP.json` plus a `crash_sweep` RunReport (recovery counters,
//! write-cache fate counters) under `--out` (default `results/reports`).
//!
//! With `--check` the run exits nonzero unless every schedule recovered
//! to the last durable checkpoint with bit-identical weights, every host
//! artifact was whole, and `storage.integrity.escaped` stayed 0.

use gnndrive_bench::crashsim::{crash_sweep_path, run_crash_sweep, sweep_doc, validate_crash_sweep};
use gnndrive_bench::{print_table, Row};
use gnndrive_telemetry as telemetry;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!("usage: crashsim [--out DIR] [--seed N] [--check]");
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("crashsim: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = PathBuf::from("results/reports");
    let mut seed = 0xC0FFEEu64;
    let mut check = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                out_dir = PathBuf::from(&args[i + 1]);
                i += 2;
            }
            "--seed" if i + 1 < args.len() => {
                seed = match args[i + 1].parse() {
                    Ok(s) => s,
                    Err(_) => usage(),
                };
                i += 2;
            }
            "--check" => {
                check = true;
                i += 1;
            }
            _ => usage(),
        }
    }

    let scratch = out_dir.join("crashsim-scratch");
    let sweep = match run_crash_sweep(seed, &scratch) {
        Ok(s) => s,
        Err(e) => fail(&e),
    };

    let rows: Vec<Row> = sweep
        .outcomes
        .iter()
        .map(|o| Row {
            label: format!("{:>2} {}", o.ordinal, o.point),
            cells: vec![
                o.recovered_next_batch.to_string(),
                o.expected_next_batch.to_string(),
                if o.bit_identical { "yes" } else { "NO" }.to_string(),
                format!(
                    "{}k/{}d/{}t",
                    o.sectors_kept, o.sectors_dropped, o.sectors_torn
                ),
            ],
        })
        .collect();
    print_table(
        &format!("crash schedules (seed {seed:#x})"),
        &["recovered", "expected", "bit-identical", "cut sectors"],
        &rows,
    );

    let doc = sweep_doc(&sweep);
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        fail(&format!("create {}: {e}", out_dir.display()));
    }
    let artifact = crash_sweep_path(&out_dir);
    if let Err(e) = telemetry::atomic_write_file(
        "crashsim.artifact",
        &artifact,
        (doc.to_json_string() + "\n").as_bytes(),
    ) {
        fail(&format!("write {}: {e}", artifact.display()));
    }
    println!("artifact: {}", artifact.display());

    // The recovery/write-cache counter story also lands as a RunReport.
    std::env::set_var("REPRO_REPORT_DIR", &out_dir);
    let report = gnndrive_bench::collect_report(
        "crash_sweep",
        &format!("crash-schedule sweep, seed {seed:#x}"),
        Vec::new(),
    );
    gnndrive_bench::write_report(&report);

    if !check {
        return;
    }
    if let Err(e) = validate_crash_sweep(&doc) {
        fail(&format!("check failed: {e}"));
    }
    println!(
        "check: {} schedules recovered to the last durable checkpoint, bit-identical, escaped=0",
        sweep.outcomes.len()
    );
}
