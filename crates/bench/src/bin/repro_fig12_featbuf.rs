//! Figure 12 — GNNDrive epoch runtime vs feature-buffer size (1×–8× of
//! the default).
//!
//! Paper shape: doubling the buffer helps (inter-batch locality: ~1.4×
//! on Twitter/GraphSAGE for the GPU variant), but beyond 2× the gains
//! flatten as management overheads offset the extra hits.

use gnndrive_bench::{
    build_system, dataset_for, env_knobs, feature_buffer_slots_for, print_series, Scenario,
    SystemKind,
};
use gnndrive_graph::MiniDataset;

fn main() {
    let knobs = env_knobs();
    let multipliers = [1usize, 2, 4, 8];
    let datasets = [MiniDataset::Twitter, MiniDataset::Papers100M];
    for dataset in datasets {
        let mut points = Vec::new();
        for &m in &multipliers {
            let mut sc = Scenario::default_for(dataset, &knobs);
            let base = feature_buffer_slots_for(&sc, 4);
            sc.fb_slots_override = Some(base * m);
            let ds = dataset_for(&sc);
            let mut ys = Vec::new();
            for kind in [SystemKind::GnnDriveGpu, SystemKind::GnnDriveCpu] {
                let y = match build_system(kind, &sc, &ds) {
                    Ok(mut sys) => {
                        // Warm one epoch so inter-batch locality can act,
                        // then measure.
                        let _ = sys.train_epoch(0, knobs.max_batches);
                        let r = sys.train_epoch(1, knobs.max_batches);
                        match r.error {
                            Some(e) => {
                                eprintln!("{m}x {}: {e}", kind.name());
                                f64::NAN
                            }
                            None => {
                                eprintln!(
                                    "{m}x {}: loaded {} reused {}",
                                    kind.name(),
                                    r.nodes_loaded,
                                    r.nodes_reused
                                );
                                r.extrapolated_wall().as_secs_f64()
                            }
                        }
                    }
                    Err(e) => {
                        eprintln!("{m}x {}: {e}", kind.name());
                        f64::NAN
                    }
                };
                ys.push(y);
            }
            points.push((m as f64, ys));
        }
        print_series(
            &format!(
                "Fig 12: GNNDrive epoch time (s) vs feature-buffer size — {}",
                dataset.name()
            ),
            "x default",
            &["GNNDrive-GPU", "GNNDrive-CPU"],
            &points,
        );
    }
}
