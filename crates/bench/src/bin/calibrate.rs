//! Calibration probe: measures per-batch stage costs for every system on
//! one scenario so the simulation scales (SSD profile, compute rates,
//! buffer sizes) can be sanity-checked against the paper's shape
//! (extract ≫ sample ≈ train; GNNDrive ≫ baselines).

use gnndrive_bench::{
    build_system, dataset_for, env_knobs, print_table, Row, Scenario, SystemKind,
};
use gnndrive_graph::MiniDataset;

fn main() {
    let knobs = env_knobs();
    let sc = Scenario::default_for(MiniDataset::Papers100M, &knobs);
    eprintln!(
        "calibrating on {} scale={} dim={} budget={} MiB",
        sc.dataset.name(),
        sc.scale,
        sc.dim,
        sc.budget_bytes() / (1024 * 1024)
    );
    let t0 = std::time::Instant::now();
    let ds = dataset_for(&sc);
    eprintln!(
        "dataset built in {:?}: {} nodes, {} edges, train {}",
        t0.elapsed(),
        ds.spec.num_nodes,
        ds.spec.num_edges,
        ds.train_idx.len()
    );

    let mut rows = Vec::new();
    for kind in [
        SystemKind::GnnDriveGpu,
        SystemKind::GnnDriveCpu,
        SystemKind::PygPlus,
        SystemKind::Ginex,
        SystemKind::Marius,
    ] {
        let t0 = std::time::Instant::now();
        match build_system(kind, &sc, &ds) {
            Ok(mut sys) => {
                let r = sys.train_epoch(0, knobs.max_batches);
                let per_batch = r.wall.as_secs_f64() / r.batches.max(1) as f64;
                rows.push(
                    Row::new(kind.name())
                        .cell(format!("{}", r.batches))
                        .secs(r.wall.as_secs_f64())
                        .secs(per_batch)
                        .secs(r.extrapolated_wall().as_secs_f64())
                        .secs(r.sample_secs)
                        .secs(r.extract_secs)
                        .secs(r.train_secs)
                        .secs(r.prep_secs)
                        .cell(format!("{:.1}", r.bytes_read as f64 / 1e6))
                        .cell(r.error.clone().unwrap_or_default()),
                );
                eprintln!("{}: {:?} total", kind.name(), t0.elapsed());
            }
            Err(e) => rows.push(Row::new(kind.name()).cell(format!("build failed: {e}"))),
        }
    }
    print_table(
        "calibration (papers100m-mini, GraphSAGE)",
        &[
            "batches",
            "wall_s",
            "s/batch",
            "epoch_s",
            "sample_s",
            "extract_s",
            "train_s",
            "prep_s",
            "MB_read",
            "err",
        ],
        &rows,
    );
}
