//! Table 1 — "A summary of datasets".
//!
//! Prints, per mini dataset analog: node count, edge count, feature
//! dimension, class count, and on-SSD topology / feature / total sizes.
//! Paper sizes are GB; the ÷1000 analogs land in MB, so the paper's column
//! `Memory (GB)` is reported here as MB.

use gnndrive_bench::{dataset_for, env_knobs, print_table, Row, Scenario};
use gnndrive_graph::MiniDataset;

fn main() {
    let knobs = env_knobs();
    let mut rows = Vec::new();
    for d in MiniDataset::ALL {
        let sc = Scenario::default_for(d, &knobs);
        let ds = dataset_for(&sc);
        let topo_mb = ds.spec.topology_file_bytes() as f64 / 1e6;
        let feat_mb = ds.spec.feature_file_bytes() as f64 / 1e6;
        rows.push(
            Row::new(d.name())
                .cell(format!("{}", ds.spec.num_nodes))
                .cell(format!("{}", ds.spec.num_edges))
                .cell(format!("{}", ds.spec.feat_dim))
                .cell(format!("{}", ds.spec.num_classes))
                .cell(format!("{topo_mb:.1}"))
                .cell(format!("{feat_mb:.1}"))
                .cell(format!("{:.1}", topo_mb + feat_mb)),
        );
    }
    print_table(
        "Table 1: dataset summary (paper GB -> repro MB at 1/1000 scale)",
        &[
            "#Node", "#Edge", "Dim.", "#Class", "Topo.MB", "Feat.MB", "Tol.MB",
        ],
        &rows,
    );
}
