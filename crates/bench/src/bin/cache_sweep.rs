//! `cache_sweep` — run the pinned Belady-vs-LRU page-cache sweep and
//! (optionally) gate it against the committed baseline.
//!
//! ```text
//! cache_sweep [--out DIR] [--check] [--baseline DIR] [--epsilon X]
//! ```
//!
//! Always runs the sweep, prints the Fig-9-style hit-rate table, and
//! writes `BENCH_cache_sweep.json` plus the `TRACE_cache_sweep.bin`
//! access-trace artifact under `--out` (default `results/reports`).
//!
//! With `--check` the run additionally gates, exiting nonzero if:
//!
//! * Belady's hit rate falls below LRU's at any budget (validation — the
//!   trace-driven policy losing to LRU means the policy is broken);
//! * any policy's hit rate drops more than `--epsilon` (default 0.001)
//!   below the committed baseline (`--baseline`, default
//!   `results/baselines`) — the sweep is deterministic, so any real drop
//!   is a regression, not noise;
//! * Belady's replay at the tightest budget is slower than LRU's by more
//!   than 25% (at that budget the replay is miss-dominated, so fewer
//!   misses must not cost wall time).

use gnndrive_bench::cache_sweep::{
    compare_cache_sweep, hit_rate_rows, run_sweep, sweep_path, trace_artifact_path,
    validate_cache_sweep, SWEEP_POLICIES,
};
use gnndrive_bench::print_table;
use gnndrive_telemetry::Json;
use std::path::{Path, PathBuf};

fn usage() -> ! {
    eprintln!("usage: cache_sweep [--out DIR] [--check] [--baseline DIR] [--epsilon X]");
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("cache_sweep: {msg}");
    std::process::exit(1);
}

/// Belady-vs-LRU epoch seconds at the tightest (first) budget.
fn tightest_epoch_secs(doc: &Json) -> Option<(f64, f64)> {
    let point = doc.get("budgets")?.as_array()?.first()?;
    let policies = point.get("policies")?;
    let secs = |name: &str| policies.get(name)?.get("epoch_secs")?.as_f64();
    Some((secs("lru")?, secs("belady")?))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = PathBuf::from("results/reports");
    let mut baseline_dir = PathBuf::from("results/baselines");
    let mut check = false;
    let mut epsilon = 0.001f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                out_dir = PathBuf::from(&args[i + 1]);
                i += 2;
            }
            "--baseline" if i + 1 < args.len() => {
                baseline_dir = PathBuf::from(&args[i + 1]);
                i += 2;
            }
            "--epsilon" if i + 1 < args.len() => {
                epsilon = match args[i + 1].parse() {
                    Ok(e) => e,
                    Err(_) => usage(),
                };
                i += 2;
            }
            "--check" => {
                check = true;
                i += 1;
            }
            _ => usage(),
        }
    }

    let outcome = match run_sweep() {
        Ok(o) => o,
        Err(e) => fail(&e),
    };
    if let Err(e) = validate_cache_sweep(&outcome.doc) {
        fail(&format!("sweep produced an invalid artifact: {e}"));
    }

    let mut header: Vec<&str> = SWEEP_POLICIES.to_vec();
    header.push("belady-lru");
    match hit_rate_rows(&outcome.doc) {
        Ok(rows) => print_table("cache_sweep hit rates by budget", &header, &rows),
        Err(e) => fail(&e),
    }

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        fail(&format!("create {}: {e}", out_dir.display()));
    }
    let bench = sweep_path(&out_dir);
    if let Err(e) = std::fs::write(&bench, outcome.doc.to_json_string() + "\n") {
        fail(&format!("write {}: {e}", bench.display()));
    }
    println!("artifact: {}", bench.display());
    let trace = trace_artifact_path(&out_dir);
    if let Err(e) = outcome.trace.save(&trace) {
        fail(&format!("write {}: {e}", trace.display()));
    }
    println!(
        "trace: {} ({} accesses)",
        trace.display(),
        outcome.trace.len()
    );

    if !check {
        return;
    }

    // Gate 1: Belady must not cost wall time where misses dominate.
    if let Some((lru_secs, belady_secs)) = tightest_epoch_secs(&outcome.doc) {
        if belady_secs > lru_secs * 1.25 {
            fail(&format!(
                "belady replay at tightest budget took {belady_secs:.3}s vs lru {lru_secs:.3}s"
            ));
        }
    }

    // Gate 2: no hit-rate drop against the committed baseline.
    let baseline_path = sweep_path(Path::new(&baseline_dir));
    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => fail(&format!("baseline {}: {e}", baseline_path.display())),
    };
    let baseline = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => fail(&format!("baseline {}: {e}", baseline_path.display())),
    };
    match compare_cache_sweep(&baseline, &outcome.doc, epsilon) {
        Ok(regs) if regs.is_empty() => {
            println!("check: no hit-rate regressions beyond {epsilon}");
        }
        Ok(regs) => {
            for r in &regs {
                eprintln!("cache_sweep: {r}");
            }
            std::process::exit(1);
        }
        Err(e) => fail(&e),
    }
}
