//! Figure 10 — epoch runtime vs mini-batch size.
//!
//! The paper sweeps 500–4000 (default 1000); at the reproduction's ÷31
//! batch scale that is 16–128 (default 32). Paper shape: Ginex and
//! GNNDrive improve with larger batches (fewer per epoch); PyG+
//! fluctuates — larger batches demand more extract-side memory, which
//! fights its page-cached sampling; PyG+ OOMs at the largest batch on
//! Friendster with GAT.

use gnndrive_bench::{build_system, dataset_for, env_knobs, print_series, Scenario, SystemKind};
use gnndrive_graph::MiniDataset;
use gnndrive_nn::ModelKind;

fn main() {
    let knobs = env_knobs();
    let batches = [16usize, 32, 64, 128];
    let scenarios: Vec<(MiniDataset, ModelKind)> = vec![
        (MiniDataset::Papers100M, ModelKind::GraphSage),
        (MiniDataset::Friendster, ModelKind::Gat),
    ];
    for (dataset, model) in scenarios {
        let mut points = Vec::new();
        for &bs in &batches {
            let mut sc = Scenario::default_for(dataset, &knobs);
            sc.model = model;
            sc.batch_size = bs;
            if model == ModelKind::Gat {
                sc.fanouts = vec![4, 4, 2];
            }
            let ds = dataset_for(&sc);
            let mut ys = Vec::new();
            for kind in [
                SystemKind::PygPlus,
                SystemKind::Ginex,
                SystemKind::GnnDriveGpu,
            ] {
                let y = match build_system(kind, &sc, &ds) {
                    Ok(mut sys) => {
                        let r = sys.train_epoch(0, knobs.max_batches);
                        match r.error {
                            Some(e) => {
                                eprintln!(
                                    "{} {} bs{bs} {}: {e}",
                                    dataset.name(),
                                    model.name(),
                                    kind.name()
                                );
                                f64::NAN
                            }
                            None => r.extrapolated_wall().as_secs_f64(),
                        }
                    }
                    Err(e) => {
                        eprintln!(
                            "{} {} bs{bs} {}: {e}",
                            dataset.name(),
                            model.name(),
                            kind.name()
                        );
                        f64::NAN
                    }
                };
                ys.push(y);
            }
            points.push((bs as f64, ys));
        }
        print_series(
            &format!(
                "Fig 10: epoch time (s) vs mini-batch size — {} / {} (NaN = OOM)",
                dataset.name(),
                model.name()
            ),
            "batch",
            &["PyG+", "Ginex", "GNNDrive-GPU"],
            &points,
        );
    }
}
