//! `trajectory` — perf-trajectory bench harness (DESIGN.md §10).
//!
//! ```text
//! trajectory run [--out DIR]                   # run the pinned suite
//! trajectory check <dir>                       # schema + verdict validation
//! trajectory compare <baseline> <new> [--threshold X]
//! ```
//!
//! `run` executes the pinned scenario suite (tight_memory / compute_heavy /
//! balanced) and writes one `BENCH_<scenario>.json` per scenario under
//! `--out` (default `results/baselines`). `check` validates every artifact
//! in a directory, including that verdict-pinned scenarios produced their
//! expected bottleneck verdict. `compare` diffs two artifact directories
//! and exits nonzero if any metric regressed beyond the threshold
//! (default 0.5 = +50%; CI uses 3.0 to ride out shared-runner noise).

use gnndrive_bench::cache_sweep::{compare_cache_sweep, hit_rate_delta_rows, sweep_path};
use gnndrive_bench::print_table;
use gnndrive_bench::trajectory::{bench_path, compare, run_scenario, suite, validate_bench};
use gnndrive_telemetry::Json;
use std::path::{Path, PathBuf};

fn usage() -> ! {
    eprintln!(
        "usage:\n  trajectory run [--out DIR]\n  trajectory check <dir>\n  \
         trajectory compare <baseline-dir> <new-dir> [--threshold X]"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("trajectory: {msg}");
    std::process::exit(1);
}

fn read_doc(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn cmd_run(out_dir: &Path) {
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        fail(&format!("create {}: {e}", out_dir.display()));
    }
    for ts in suite() {
        println!("== {} ({} batches)", ts.name, ts.max_batches);
        let doc = match run_scenario(&ts) {
            Ok(doc) => doc,
            Err(e) => fail(&e),
        };
        if let Err(e) = validate_bench(&doc) {
            fail(&format!("{}: produced invalid artifact: {e}", ts.name));
        }
        let path = bench_path(out_dir, ts.name);
        if let Err(e) = std::fs::write(&path, doc.to_json_string() + "\n") {
            fail(&format!("write {}: {e}", path.display()));
        }
        let verdict = doc
            .get("attribution")
            .and_then(|a| a.get("verdict"))
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();
        println!("   verdict {verdict} -> {}", path.display());
    }
}

fn cmd_check(dir: &Path) {
    let mut checked = 0usize;
    let mut errors = Vec::new();
    for ts in suite() {
        let path = bench_path(dir, ts.name);
        match read_doc(&path).and_then(|doc| validate_bench(&doc)) {
            Ok(()) => {
                checked += 1;
                println!("ok {}", path.display());
            }
            Err(e) => errors.push(e),
        }
    }
    for e in &errors {
        eprintln!("trajectory: {e}");
    }
    if !errors.is_empty() || checked == 0 {
        std::process::exit(1);
    }
}

fn cmd_compare(base_dir: &Path, new_dir: &Path, threshold: f64) {
    let mut regressions = Vec::new();
    for ts in suite() {
        let base = match read_doc(&bench_path(base_dir, ts.name)) {
            Ok(d) => d,
            Err(e) => fail(&e),
        };
        let new = match read_doc(&bench_path(new_dir, ts.name)) {
            Ok(d) => d,
            Err(e) => fail(&e),
        };
        match compare(&base, &new, threshold) {
            Ok(regs) => regressions.extend(regs),
            Err(e) => fail(&format!("{}: {e}", ts.name)),
        }
    }
    // When both directories carry a cache-sweep artifact, render the
    // per-budget hit-rate drift alongside the stage diffs and fold any
    // Belady hit-rate drop into the regression verdict.
    let (base_sweep, new_sweep) = (sweep_path(base_dir), sweep_path(new_dir));
    if base_sweep.is_file() && new_sweep.is_file() {
        let base = match read_doc(&base_sweep) {
            Ok(d) => d,
            Err(e) => fail(&e),
        };
        let new = match read_doc(&new_sweep) {
            Ok(d) => d,
            Err(e) => fail(&e),
        };
        match hit_rate_delta_rows(&base, &new) {
            Ok(rows) => print_table(
                "cache_sweep hit-rate delta (baseline -> new)",
                &["lru", "belady", "belady_packed"],
                &rows,
            ),
            Err(e) => fail(&format!("cache_sweep: {e}")),
        }
        match compare_cache_sweep(&base, &new, 0.001) {
            Ok(regs) => regressions.extend(regs),
            Err(e) => fail(&format!("cache_sweep: {e}")),
        }
    }
    if regressions.is_empty() {
        println!("no regressions beyond +{:.0}%", threshold * 100.0);
    } else {
        for r in &regressions {
            eprintln!("trajectory: {r}");
        }
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => {
            let mut out = PathBuf::from("results/baselines");
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--out" if i + 1 < args.len() => {
                        out = PathBuf::from(&args[i + 1]);
                        i += 2;
                    }
                    _ => usage(),
                }
            }
            cmd_run(&out);
        }
        Some("check") => match args.get(1) {
            Some(dir) if args.len() == 2 => cmd_check(Path::new(dir)),
            _ => usage(),
        },
        Some("compare") => {
            let (base, new) = match (args.get(1), args.get(2)) {
                (Some(b), Some(n)) => (PathBuf::from(b), PathBuf::from(n)),
                _ => usage(),
            };
            let mut threshold = 0.5;
            let mut i = 3;
            while i < args.len() {
                match args[i].as_str() {
                    "--threshold" if i + 1 < args.len() => {
                        threshold = match args[i + 1].parse() {
                            Ok(t) => t,
                            Err(_) => usage(),
                        };
                        i += 2;
                    }
                    _ => usage(),
                }
            }
            cmd_compare(&base, &new, threshold);
        }
        _ => usage(),
    }
}
