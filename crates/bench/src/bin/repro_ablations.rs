//! Ablations of GNNDrive's design choices (DESIGN.md §3): each row removes
//! one mechanism and re-measures the epoch.
//!
//! * `default` — async extraction, direct I/O, joint extraction, reordering
//! * `sync-extract` — blocking loads and transfers (𝔒2 restored)
//! * `buffered-io` — page-cache feature loads instead of direct I/O (the
//!   memory-contention path, 𝔒1 partially restored)
//! * `no-joint` — one request per row even for sub-sector rows (only
//!   meaningful for dim < 128)
//! * `no-reorder` — trainer consumes mini-batches in submission order
//! * `gpu-direct` — the paper's future-work GDS path: no staging hop,
//!   4 KiB granularity

use gnndrive_bench::{
    dataset_for, env_knobs, feature_buffer_slots_for, print_table, Row, Scenario,
};
use gnndrive_core::{GnnDriveConfig, Pipeline, TrainingSystem};
use gnndrive_device::GpuDevice;
use gnndrive_graph::MiniDataset;
use gnndrive_storage::{MemoryGovernor, PageCache};
use std::sync::Arc;

/// One config mutation, applied to a fresh default `GnnDriveConfig`.
type Ablation = Box<dyn FnOnce(&mut GnnDriveConfig)>;

fn run(
    sc: &Scenario,
    mutate: impl FnOnce(&mut GnnDriveConfig),
    knobs: &gnndrive_bench::EnvKnobs,
) -> Result<f64, String> {
    let ds = dataset_for(sc);
    let governor = MemoryGovernor::new(sc.budget_bytes());
    let cache = PageCache::new(Arc::clone(&ds.ssd), Arc::clone(&governor));
    let mut cfg = GnnDriveConfig {
        feature_buffer_slots: feature_buffer_slots_for(sc, 4),
        staging_bytes_per_extractor: 1024 * 1024,
        fanouts: sc.fanouts.clone(),
        batch_size: sc.batch_size,
        seed: 77,
        ..Default::default()
    };
    mutate(&mut cfg);
    let mut p = Pipeline::builder(ds, GpuDevice::rtx3090())
        .with_model(sc.model, sc.hidden)
        .with_config(cfg)
        .with_governor(governor)
        .with_page_cache(cache)
        .build()
        .map_err(|e| e.to_string())?;
    let r = p.train_epoch(0, knobs.max_batches);
    match r.error {
        Some(e) => Err(e),
        None => Ok(r.extrapolated_wall().as_secs_f64()),
    }
}

fn main() {
    let knobs = env_knobs();
    // dim 64 so joint extraction has sub-sector rows to coalesce.
    let mut sc = Scenario::default_for(MiniDataset::Papers100M, &knobs);
    sc.dim = 64;
    let ablations: Vec<(&str, Ablation)> = vec![
        ("default", Box::new(|_c: &mut GnnDriveConfig| {})),
        (
            "sync-extract",
            Box::new(|c: &mut GnnDriveConfig| c.sync_extract = true),
        ),
        (
            "buffered-io",
            Box::new(|c: &mut GnnDriveConfig| c.direct_io = false),
        ),
        (
            "no-joint",
            Box::new(|c: &mut GnnDriveConfig| c.max_joint_read_bytes = 0),
        ),
        (
            "no-reorder",
            Box::new(|c: &mut GnnDriveConfig| c.reorder = false),
        ),
        (
            "gpu-direct",
            Box::new(|c: &mut GnnDriveConfig| c.gpu_direct = true),
        ),
    ];
    let mut rows = Vec::new();
    for (name, mutate) in ablations {
        match run(&sc, mutate, &knobs) {
            Ok(secs) => {
                eprintln!("{name}: {secs:.2}s");
                rows.push(Row::new(name).secs(secs));
            }
            Err(e) => rows.push(Row::new(name).cell(format!("failed: {e}"))),
        }
    }
    print_table(
        "Ablations: GNNDrive epoch time (s), papers100m-mini dim 64, GraphSAGE",
        &["epoch_s"],
        &rows,
    );
}
