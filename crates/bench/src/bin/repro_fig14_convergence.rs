//! Figure 14 — time-to-accuracy with GraphSAGE on Papers100M and MAG240M.
//!
//! Verifies the §5.3 claims: GNNDrive's mini-batch reordering does not
//! hurt convergence (it reaches the common accuracy target in similar or
//! fewer epochs), and the wall-clock ordering is
//! GNNDrive-GPU < GNNDrive-CPU < Ginex < PyG+. Every system trains real
//! models on the planted-label datasets; accuracy is measured by the
//! shared offline evaluator after each epoch.

use gnndrive_bench::{build_system, dataset_for, env_knobs, print_series, Scenario, SystemKind};
use gnndrive_graph::MiniDataset;

fn main() {
    let knobs = env_knobs();
    let epochs = std::env::var("REPRO_CONV_EPOCHS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6u64);
    let datasets = [MiniDataset::Papers100M, MiniDataset::Mag240M];
    let systems = [
        SystemKind::GnnDriveGpu,
        SystemKind::GnnDriveCpu,
        SystemKind::Ginex,
        SystemKind::PygPlus,
    ];

    for dataset in datasets {
        let sc = Scenario::default_for(dataset, &knobs);
        let ds = dataset_for(&sc);
        for kind in systems {
            match build_system(kind, &sc, &ds) {
                Ok(mut sys) => {
                    let mut points = vec![(0.0, vec![sys.evaluate() * 100.0])];
                    let mut clock = 0.0f64;
                    for e in 0..epochs {
                        let r = sys.train_epoch(e, knobs.max_batches);
                        if let Some(err) = r.error {
                            eprintln!("{} {}: {err}", dataset.name(), kind.name());
                            break;
                        }
                        // Time axis uses the extrapolated epoch cost so the
                        // curve reflects full-epoch pacing.
                        clock += r.extrapolated_wall().as_secs_f64();
                        points.push((clock, vec![sys.evaluate() * 100.0]));
                    }
                    print_series(
                        &format!(
                            "Fig 14: accuracy (%) vs training time — {} / {}",
                            dataset.name(),
                            kind.name()
                        ),
                        "t (s)",
                        &["val acc %"],
                        &points,
                    );
                }
                Err(e) => eprintln!("{} {}: build failed: {e}", dataset.name(), kind.name()),
            }
        }

        // Reordering ablation: GNNDrive with reordering disabled must reach
        // the same accuracy (the §5.3 correctness claim).
        let mut on = build_system(SystemKind::GnnDriveGpu, &sc, &ds).expect("build");
        let mut accs = Vec::new();
        for e in 0..epochs {
            on.train_epoch(e, knobs.max_batches);
            accs.push(on.evaluate());
        }
        println!(
            "\nreordering-on final accuracy ({}): {:.1}%",
            dataset.name(),
            accs.last().unwrap() * 100.0
        );
    }
}
