//! Figure 8 — epoch runtime vs feature dimension (64–512), for every
//! dataset × model × system combination.
//!
//! Paper shape to reproduce: GNNDrive-GPU wins nearly everywhere; PyG+ is
//! far more dimension-sensitive than the others (7× from 64→512 on
//! MAG240M); at small dims on small datasets (Twitter/Friendster) PyG+
//! closes in because the page cache can hold the whole feature file;
//! GNNDrive-CPU lags GPU most for GAT.
//!
//! Datasets/models can be narrowed: `REPRO_DATASETS=papers100m-mini,...`
//! `REPRO_MODELS=GraphSAGE,GCN,GAT`.

use gnndrive_bench::{build_system, dataset_for, env_knobs, print_series, Scenario, SystemKind};
use gnndrive_graph::MiniDataset;
use gnndrive_nn::ModelKind;

fn selected_datasets() -> Vec<MiniDataset> {
    match std::env::var("REPRO_DATASETS") {
        Ok(v) => MiniDataset::ALL
            .into_iter()
            .filter(|d| v.split(',').any(|s| s.trim() == d.name()))
            .collect(),
        Err(_) => MiniDataset::ALL.to_vec(),
    }
}

fn selected_models() -> Vec<ModelKind> {
    match std::env::var("REPRO_MODELS") {
        Ok(v) => ModelKind::ALL
            .into_iter()
            .filter(|m| {
                v.split(',')
                    .any(|s| s.trim().eq_ignore_ascii_case(m.name()))
            })
            .collect(),
        Err(_) => ModelKind::ALL.to_vec(),
    }
}

fn main() {
    let knobs = env_knobs();
    let dims = [64usize, 128, 256, 512];
    for dataset in selected_datasets() {
        for model in selected_models() {
            let mut points = Vec::new();
            for &dim in &dims {
                let mut sc = Scenario::default_for(dataset, &knobs);
                sc.dim = dim;
                sc.model = model;
                if model == ModelKind::Gat {
                    // Paper: GAT samples (10,10,5); scaled (4,4,2).
                    sc.fanouts = vec![4, 4, 2];
                }
                let ds = dataset_for(&sc);
                let mut ys = Vec::new();
                for kind in SystemKind::MAIN_FOUR {
                    let y = match build_system(kind, &sc, &ds) {
                        Ok(mut sys) => {
                            let r = sys.train_epoch(0, knobs.max_batches);
                            if let Some(e) = r.error {
                                eprintln!(
                                    "{} {} dim{dim} {}: {e}",
                                    dataset.name(),
                                    model.name(),
                                    kind.name()
                                );
                                f64::NAN
                            } else {
                                r.extrapolated_wall().as_secs_f64()
                            }
                        }
                        Err(e) => {
                            eprintln!(
                                "{} {} dim{dim} {}: {e}",
                                dataset.name(),
                                model.name(),
                                kind.name()
                            );
                            f64::NAN
                        }
                    };
                    ys.push(y);
                }
                points.push((dim as f64, ys));
            }
            print_series(
                &format!(
                    "Fig 8: epoch time (s) vs dim — {} / {}",
                    dataset.name(),
                    model.name()
                ),
                "dim",
                &["PyG+", "Ginex", "GNNDrive-GPU", "GNNDrive-CPU"],
                &points,
            );
        }
    }
}
