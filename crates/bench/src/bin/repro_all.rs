//! Run every reproduction experiment in sequence (Table 1, Figs 2/3/8/9/
//! 10/11/12/13/14, Table 2, Appendix B), streaming each binary's output.
//!
//! Honors the same `REPRO_*` environment knobs as the individual binaries.
//! With defaults this takes tens of minutes on a small container; set
//! `REPRO_MAX_BATCHES=6` and `REPRO_SCALE=0.25` for a faster pass.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "repro_table1_datasets",
    "repro_appendix_b_io",
    "repro_fig2_contention",
    "repro_fig3_utilization",
    "repro_fig11_utilization",
    "repro_fig8_dims",
    "repro_fig9_memory",
    "repro_fig10_batch",
    "repro_fig12_featbuf",
    "repro_fig13_scaling",
    "repro_fig14_convergence",
    "repro_table2_marius",
];

fn main() {
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin dir");
    let mut failures = Vec::new();
    for exp in EXPERIMENTS {
        println!("\n########## {exp} ##########");
        let status = Command::new(bin_dir.join(exp))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {exp}: {e}"));
        if !status.success() {
            eprintln!("{exp} FAILED: {status}");
            failures.push(*exp);
        }
    }
    if failures.is_empty() {
        println!("\nall {} experiments completed", EXPERIMENTS.len());
    } else {
        eprintln!("\nfailed experiments: {failures:?}");
        std::process::exit(1);
    }
}
