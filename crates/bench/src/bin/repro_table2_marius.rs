//! Table 2 — MariusGNN vs GNNDrive: data preparation, training, and
//! overall per-epoch time; OOM outcomes for MAG240M.
//!
//! Paper shape: GNNDrive-GPU beats MariusGNN's *training* time and beats
//! its *overall* time by more (mandatory data preparation sits on the
//! critical path: 46% of MariusGNN's epoch at 32 GB); MariusGNN OOMs on
//! MAG240M at 32 GB *and* at 128 GB (prep-time OOM), while GNNDrive
//! finishes even at 8 GB.

use gnndrive_bench::{
    build_system, dataset_for, env_knobs, print_table, Row, Scenario, SystemKind,
};
use gnndrive_graph::MiniDataset;

fn run_cell(
    kind: SystemKind,
    sc: &Scenario,
    knobs: &gnndrive_bench::EnvKnobs,
) -> (String, String, String) {
    let ds = dataset_for(sc);
    match build_system(kind, sc, &ds) {
        Ok(mut sys) => {
            let r = sys.train_epoch(0, knobs.max_batches);
            if let Some(e) = r.error {
                eprintln!("{}: {e}", kind.name());
                return ("OOM".into(), "OOM".into(), "OOM".into());
            }
            let scale = r.full_batches.max(1) as f64 / r.batches.max(1) as f64;
            let train = (r.wall.as_secs_f64() - r.prep_secs).max(0.0) * scale;
            let prep = r.prep_secs; // once per epoch, not per batch
            (
                if prep > 0.0 {
                    format!("{prep:.2}")
                } else {
                    "N/A".into()
                },
                format!("{train:.2}"),
                format!("{:.2}", prep + train),
            )
        }
        Err(e) => {
            eprintln!("{} build: {e}", kind.name());
            ("OOM".into(), "OOM".into(), "OOM".into())
        }
    }
}

fn main() {
    let knobs = env_knobs();
    let mut rows = Vec::new();
    let configs: Vec<(&str, SystemKind, u64)> = vec![
        ("GNNDrive-GPU", SystemKind::GnnDriveGpu, 32),
        ("GNNDrive-CPU", SystemKind::GnnDriveCpu, 32),
        ("PyG+", SystemKind::PygPlus, 32),
        ("Ginex", SystemKind::Ginex, 32),
        ("MariusGNN-32G", SystemKind::Marius, 32),
        ("MariusGNN-128G", SystemKind::Marius, 128),
    ];
    for (label, kind, gb) in configs {
        let mut cells = Vec::new();
        for dataset in [MiniDataset::Papers100M, MiniDataset::Mag240M] {
            let mut sc = Scenario::default_for(dataset, &knobs);
            sc.memory_gb = gb;
            let (prep, train, overall) = run_cell(kind, &sc, &knobs);
            cells.extend([prep, train, overall]);
        }
        let mut row = Row::new(label);
        for c in cells {
            row = row.cell(c);
        }
        rows.push(row);
    }
    print_table(
        "Table 2: per-epoch runtime (s) — columns: Papers100M [prep, train, overall], MAG240M [prep, train, overall]",
        &["P-prep", "P-train", "P-all", "M-prep", "M-train", "M-all"],
        &rows,
    );
}
