//! `gnndrive` — command-line front end for the reproduction.
//!
//! ```text
//! gnndrive dataset build --name papers100m-mini [--dim 128] [--scale 1.0] --out DIR
//! gnndrive train [--name papers100m-mini | --data DIR] [--system gnndrive-gpu]
//!                [--model sage|gcn|gat] [--epochs 3] [--batch 32]
//!                [--memory-gb 32] [--max-batches N]
//!                [--checkpoint FILE] [--checkpoint-every N] [--resume FILE]
//! gnndrive systems          # list available systems
//! ```
//!
//! Checkpointing (GNNDrive systems only): `--checkpoint-every N` snapshots
//! model weights, Adam state, and the epoch/batch cursor to `--checkpoint
//! FILE` every N trained batches; `--resume FILE` restores a snapshot and
//! continues the interrupted epoch at the exact batch it stopped before.
//!
//! Argument parsing is hand-rolled (the repo keeps its dependency set to
//! the approved offline crates).

use gnndrive_bench::{
    build_gnndrive_pipeline, build_system, collect_report, dataset_for, env_knobs, scenario_desc,
    slug, write_report, Scenario, SystemKind,
};
use gnndrive_core::{TrainCheckpoint, TrainingSystem};
use gnndrive_graph::{Dataset, MiniDataset};
use gnndrive_nn::ModelKind;
use gnndrive_storage::{SimSsd, SsdProfile};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage:\n  gnndrive dataset build --name <mini-dataset> [--dim D] [--scale S] --out DIR\n  \
         gnndrive train [--name <mini-dataset> | --data DIR] [--system S] [--model M]\n          \
         [--epochs N] [--batch B] [--memory-gb G] [--max-batches K]\n          \
         [--checkpoint FILE] [--checkpoint-every N] [--resume FILE]\n  \
         gnndrive systems"
    );
    std::process::exit(2);
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(key) = a.strip_prefix("--") {
            if i + 1 >= args.len() {
                eprintln!("missing value for --{key}");
                usage();
            }
            out.insert(key.to_string(), args[i + 1].clone());
            i += 2;
        } else {
            eprintln!("unexpected argument: {a}");
            usage();
        }
    }
    out
}

fn dataset_by_name(name: &str) -> Option<MiniDataset> {
    MiniDataset::ALL.into_iter().find(|d| d.name() == name)
}

fn system_by_name(name: &str) -> Option<SystemKind> {
    match name {
        "gnndrive-gpu" | "gnndrive" => Some(SystemKind::GnnDriveGpu),
        "gnndrive-cpu" => Some(SystemKind::GnnDriveCpu),
        "pyg+" | "pygplus" => Some(SystemKind::PygPlus),
        "ginex" => Some(SystemKind::Ginex),
        "marius" | "mariusgnn" => Some(SystemKind::Marius),
        _ => None,
    }
}

fn model_by_name(name: &str) -> Option<ModelKind> {
    match name.to_ascii_lowercase().as_str() {
        "sage" | "graphsage" => Some(ModelKind::GraphSage),
        "gcn" => Some(ModelKind::Gcn),
        "gat" => Some(ModelKind::Gat),
        _ => None,
    }
}

fn cmd_dataset_build(flags: HashMap<String, String>) {
    let name = flags
        .get("name")
        .map(String::as_str)
        .unwrap_or_else(|| usage());
    let Some(mini) = dataset_by_name(name) else {
        eprintln!(
            "unknown dataset {name}; available: {}",
            MiniDataset::ALL.map(|d| d.name()).join(", ")
        );
        std::process::exit(2);
    };
    let out = flags
        .get("out")
        .map(String::as_str)
        .unwrap_or_else(|| usage());
    let knobs = env_knobs();
    let mut sc = Scenario::default_for(mini, &knobs);
    if let Some(d) = flags.get("dim") {
        sc.dim = d.parse().expect("--dim");
    }
    if let Some(s) = flags.get("scale") {
        sc.scale = s.parse().expect("--scale");
    }
    let t0 = std::time::Instant::now();
    let ds = dataset_for(&sc);
    ds.save_to_dir(std::path::Path::new(out))
        .expect("save dataset");
    println!(
        "built {} ({} nodes, {} edges, dim {}) in {:.2?} -> {out}",
        ds.spec.name,
        ds.spec.num_nodes,
        ds.spec.num_edges,
        ds.spec.feat_dim,
        t0.elapsed()
    );
}

fn cmd_train(flags: HashMap<String, String>) {
    let knobs = env_knobs();
    let system = flags
        .get("system")
        .map(|s| system_by_name(s).unwrap_or_else(|| usage()))
        .unwrap_or(SystemKind::GnnDriveGpu);
    let model = flags
        .get("model")
        .map(|m| model_by_name(m).unwrap_or_else(|| usage()))
        .unwrap_or(ModelKind::GraphSage);
    let epochs: u64 = flags
        .get("epochs")
        .map(|v| v.parse().expect("--epochs"))
        .unwrap_or(3);
    let max_batches = flags
        .get("max-batches")
        .map(|v| v.parse().expect("--max-batches"))
        .map(Some)
        .unwrap_or(knobs.max_batches);

    // Resolve the dataset: saved directory or named analog.
    let (sc, ds) = if let Some(dir) = flags.get("data") {
        let ssd = SimSsd::new(SsdProfile::pm883_repro());
        let ds =
            Arc::new(Dataset::load_from_dir(std::path::Path::new(dir), ssd).expect("load dataset"));
        let mini = dataset_by_name(&ds.spec.name).unwrap_or(MiniDataset::Papers100M);
        let mut sc = Scenario::default_for(mini, &knobs);
        sc.dim = ds.spec.feat_dim;
        (sc, ds)
    } else {
        let name = flags
            .get("name")
            .map(String::as_str)
            .unwrap_or("papers100m-mini");
        let mini = dataset_by_name(name).unwrap_or_else(|| usage());
        let mut sc = Scenario::default_for(mini, &knobs);
        if let Some(d) = flags.get("dim") {
            sc.dim = d.parse().expect("--dim");
        }
        let ds = dataset_for(&sc);
        (sc, ds)
    };

    let mut sc = sc;
    sc.model = model;
    if let Some(b) = flags.get("batch") {
        sc.batch_size = b.parse().expect("--batch");
    }
    if let Some(g) = flags.get("memory-gb") {
        sc.memory_gb = g.parse().expect("--memory-gb");
    }

    let ck = CheckpointOpts {
        path: flags.get("checkpoint").map(PathBuf::from),
        every: flags
            .get("checkpoint-every")
            .map(|v| v.parse::<usize>().expect("--checkpoint-every").max(1)),
        resume: flags.get("resume").map(PathBuf::from),
    };
    if ck.requested() {
        let gpu = match system {
            SystemKind::GnnDriveGpu => true,
            SystemKind::GnnDriveCpu => false,
            other => {
                eprintln!(
                    "--checkpoint/--checkpoint-every/--resume need a GNNDrive system \
                     (got {}): only the Pipeline API exposes training state.",
                    other.name()
                );
                std::process::exit(2);
            }
        };
        return train_checkpointed(&sc, &ds, gpu, epochs, max_batches, ck);
    }

    let mut sys = match build_system(system, &sc, &ds) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{}: failed to build: {e}", system.name());
            std::process::exit(1);
        }
    };
    println!(
        "training {} / {} on {} (budget {} MiB, batch {})",
        sys.name(),
        model.name(),
        ds.spec.name,
        sc.budget_bytes() / (1024 * 1024),
        sc.batch_size
    );
    println!("epoch -1: val acc {:.1}%", sys.evaluate() * 100.0);
    let monitor = gnndrive_telemetry::Monitor::start(std::time::Duration::from_millis(100));
    let t0 = std::time::Instant::now();
    let mut last_loss = 0.0f64;
    let mut total_batches = 0usize;
    for e in 0..epochs {
        let r = sys.train_epoch(e, max_batches);
        if let Some(err) = &r.error {
            eprintln!("epoch {e} aborted: {err}");
            std::process::exit(1);
        }
        println!(
            "epoch {e}: {} batches, wall {:.2?} (extrapolated {:.2?}), loss {:.3}, val acc {:.1}%",
            r.batches,
            r.wall,
            r.extrapolated_wall(),
            r.loss,
            sys.evaluate() * 100.0
        );
        last_loss = r.loss as f64;
        total_batches += r.batches;
    }
    let wall = t0.elapsed();
    let series = monitor.stop();
    let mut report = collect_report(
        &format!("train.{}", slug(&sys.name())),
        &scenario_desc(&sc),
        series,
    );
    report.add_scalar("epochs", epochs as f64);
    report.add_scalar("batches", total_batches as f64);
    report.add_scalar("wall_secs", wall.as_secs_f64());
    report.add_scalar("final_loss", last_loss);
    report.add_scalar("val_acc", sys.evaluate());
    if let Some(attr) = sys.last_attribution() {
        attr.apply_to(&mut report);
        println!("bottleneck verdict: {}", attr.verdict.label());
    }
    write_report(&report);
}

/// The CLI's fault-tolerance knobs.
struct CheckpointOpts {
    /// Where snapshots land (`--checkpoint`; defaults to the resume path,
    /// then to `gnndrive.gnck`).
    path: Option<PathBuf>,
    /// Snapshot cadence in trained batches (`--checkpoint-every`).
    every: Option<usize>,
    /// Snapshot to restore before training (`--resume`).
    resume: Option<PathBuf>,
}

impl CheckpointOpts {
    fn requested(&self) -> bool {
        self.path.is_some() || self.every.is_some() || self.resume.is_some()
    }

    fn save_path(&self) -> PathBuf {
        self.path
            .clone()
            .or_else(|| self.resume.clone())
            .unwrap_or_else(|| PathBuf::from("gnndrive.gnck"))
    }
}

/// Train a concrete GNNDrive [`gnndrive_core::Pipeline`] with periodic
/// checkpoints and/or an initial restore. Epochs run as chunks of
/// `--checkpoint-every` batches through `train_epoch_range`, snapshotting
/// the cursor after each chunk; a resumed run picks the interrupted epoch
/// back up at the exact batch the snapshot recorded.
fn train_checkpointed(
    sc: &Scenario,
    ds: &Arc<Dataset>,
    gpu: bool,
    epochs: u64,
    max_batches: Option<usize>,
    ck: CheckpointOpts,
) {
    let mut p = match build_gnndrive_pipeline(sc, ds, gpu) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("failed to build pipeline: {e}");
            std::process::exit(1);
        }
    };
    let save_path = ck.save_path();
    let (mut epoch, mut cursor) = (0u64, 0usize);
    if let Some(resume) = &ck.resume {
        // The container validates its magic, version, lengths, and CRC32
        // footer before any blob reaches a deserializer, so a corrupted or
        // foreign file dies here with a typed explanation instead of
        // resuming training from garbage weights.
        match TrainCheckpoint::load_file(resume) {
            Ok(snap) => {
                if let Err(e) = p.restore(&snap) {
                    eprintln!("cannot resume from {}: {e}", resume.display());
                    std::process::exit(1);
                }
                epoch = snap.epoch;
                cursor = snap.next_batch as usize;
                println!(
                    "resumed from {} at epoch {epoch}, batch {cursor}",
                    resume.display()
                );
            }
            Err(e) => {
                eprintln!("cannot resume from {}: {e}", resume.display());
                eprintln!(
                    "the checkpoint is unusable — retake it (or drop --resume to start fresh)"
                );
                std::process::exit(1);
            }
        }
    }

    println!(
        "training GNNDrive-{} / {} on {} (budget {} MiB, batch {})",
        if gpu { "GPU" } else { "CPU" },
        sc.model.name(),
        ds.spec.name,
        sc.budget_bytes() / (1024 * 1024),
        sc.batch_size
    );
    println!("epoch -1: val acc {:.1}%", p.evaluate() * 100.0);
    let monitor = gnndrive_telemetry::Monitor::start(std::time::Duration::from_millis(100));
    let t0 = std::time::Instant::now();
    let mut last_loss = 0.0f64;
    let mut total_batches = 0usize;
    let mut snapshots = 0usize;
    while epoch < epochs {
        let limit = max_batches.unwrap_or(usize::MAX);
        let mut wall = std::time::Duration::ZERO;
        let (mut ran, mut failed, mut loss_sum) = (0usize, 0usize, 0.0f64);
        loop {
            let room = limit.saturating_sub(cursor);
            let take = ck.every.map_or(room, |n| n.min(room));
            if take == 0 {
                break;
            }
            let r = p.train_epoch_range(epoch, cursor, Some(take)).report;
            if let Some(err) = &r.error {
                eprintln!("epoch {epoch} aborted at batch {cursor}: {err}");
                std::process::exit(1);
            }
            let chunk = r.batches + r.failed_batches;
            if chunk == 0 {
                break; // past the end of the epoch's plan
            }
            cursor += chunk;
            ran += r.batches;
            failed += r.failed_batches;
            loss_sum += r.loss as f64 * r.batches as f64;
            wall += r.wall;
            if ck.every.is_some() {
                let done = cursor >= r.full_batches || cursor >= limit;
                let (e, b) = if done {
                    (epoch + 1, 0)
                } else {
                    (epoch, cursor)
                };
                if let Err(err) = p.checkpoint(e, b as u64).save_file(&save_path) {
                    eprintln!("checkpoint {}: {err}", save_path.display());
                    std::process::exit(1);
                }
                snapshots += 1;
            }
        }
        let loss = loss_sum / ran.max(1) as f64;
        let failed_note = if failed > 0 {
            format!(", {failed} skipped")
        } else {
            String::new()
        };
        println!(
            "epoch {epoch}: {ran} batches{failed_note}, wall {wall:.2?}, loss {loss:.3}, val acc {:.1}%",
            p.evaluate() * 100.0
        );
        last_loss = loss;
        total_batches += ran;
        epoch += 1;
        cursor = 0;
    }
    if ck.requested() {
        if let Err(err) = p.checkpoint(epochs, 0).save_file(&save_path) {
            eprintln!("checkpoint {}: {err}", save_path.display());
            std::process::exit(1);
        }
        snapshots += 1;
        println!(
            "checkpoint ({snapshots} snapshots) -> {}",
            save_path.display()
        );
    }

    let wall = t0.elapsed();
    let series = monitor.stop();
    let mut report = collect_report(
        &format!(
            "train.{}",
            slug(&format!("GNNDrive-{}", if gpu { "GPU" } else { "CPU" }))
        ),
        &scenario_desc(sc),
        series,
    );
    report.add_scalar("epochs", epochs as f64);
    report.add_scalar("batches", total_batches as f64);
    report.add_scalar("checkpoints", snapshots as f64);
    report.add_scalar("wall_secs", wall.as_secs_f64());
    report.add_scalar("final_loss", last_loss);
    report.add_scalar("val_acc", p.evaluate());
    if let Some(attr) = p.last_attribution() {
        attr.apply_to(&mut report);
        println!("bottleneck verdict: {}", attr.verdict.label());
    }
    write_report(&report);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) if cmd == "dataset" => match rest.split_first() {
            Some((sub, flags)) if sub == "build" => cmd_dataset_build(parse_flags(flags)),
            _ => usage(),
        },
        Some((cmd, rest)) if cmd == "train" => cmd_train(parse_flags(rest)),
        Some((cmd, _)) if cmd == "systems" => {
            for k in [
                SystemKind::GnnDriveGpu,
                SystemKind::GnnDriveCpu,
                SystemKind::PygPlus,
                SystemKind::Ginex,
                SystemKind::Marius,
            ] {
                println!("{}", k.name());
            }
        }
        _ => usage(),
    }
}
