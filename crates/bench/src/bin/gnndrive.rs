//! `gnndrive` — command-line front end for the reproduction.
//!
//! ```text
//! gnndrive dataset build --name papers100m-mini [--dim 128] [--scale 1.0] --out DIR
//! gnndrive train [--name papers100m-mini | --data DIR] [--system gnndrive-gpu]
//!                [--model sage|gcn|gat] [--epochs 3] [--batch 32]
//!                [--memory-gb 32] [--max-batches N] [--checkpoint FILE]
//! gnndrive systems          # list available systems
//! ```
//!
//! Argument parsing is hand-rolled (the repo keeps its dependency set to
//! the approved offline crates).

use gnndrive_bench::{
    build_system, collect_report, dataset_for, env_knobs, scenario_desc, slug, write_report,
    Scenario, SystemKind,
};
use gnndrive_graph::{Dataset, MiniDataset};
use gnndrive_nn::ModelKind;
use gnndrive_storage::{SimSsd, SsdProfile};
use std::collections::HashMap;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage:\n  gnndrive dataset build --name <mini-dataset> [--dim D] [--scale S] --out DIR\n  \
         gnndrive train [--name <mini-dataset> | --data DIR] [--system S] [--model M]\n          \
         [--epochs N] [--batch B] [--memory-gb G] [--max-batches K] [--checkpoint FILE]\n  \
         gnndrive systems"
    );
    std::process::exit(2);
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(key) = a.strip_prefix("--") {
            if i + 1 >= args.len() {
                eprintln!("missing value for --{key}");
                usage();
            }
            out.insert(key.to_string(), args[i + 1].clone());
            i += 2;
        } else {
            eprintln!("unexpected argument: {a}");
            usage();
        }
    }
    out
}

fn dataset_by_name(name: &str) -> Option<MiniDataset> {
    MiniDataset::ALL.into_iter().find(|d| d.name() == name)
}

fn system_by_name(name: &str) -> Option<SystemKind> {
    match name {
        "gnndrive-gpu" | "gnndrive" => Some(SystemKind::GnnDriveGpu),
        "gnndrive-cpu" => Some(SystemKind::GnnDriveCpu),
        "pyg+" | "pygplus" => Some(SystemKind::PygPlus),
        "ginex" => Some(SystemKind::Ginex),
        "marius" | "mariusgnn" => Some(SystemKind::Marius),
        _ => None,
    }
}

fn model_by_name(name: &str) -> Option<ModelKind> {
    match name.to_ascii_lowercase().as_str() {
        "sage" | "graphsage" => Some(ModelKind::GraphSage),
        "gcn" => Some(ModelKind::Gcn),
        "gat" => Some(ModelKind::Gat),
        _ => None,
    }
}

fn cmd_dataset_build(flags: HashMap<String, String>) {
    let name = flags
        .get("name")
        .map(String::as_str)
        .unwrap_or_else(|| usage());
    let Some(mini) = dataset_by_name(name) else {
        eprintln!(
            "unknown dataset {name}; available: {}",
            MiniDataset::ALL.map(|d| d.name()).join(", ")
        );
        std::process::exit(2);
    };
    let out = flags
        .get("out")
        .map(String::as_str)
        .unwrap_or_else(|| usage());
    let knobs = env_knobs();
    let mut sc = Scenario::default_for(mini, &knobs);
    if let Some(d) = flags.get("dim") {
        sc.dim = d.parse().expect("--dim");
    }
    if let Some(s) = flags.get("scale") {
        sc.scale = s.parse().expect("--scale");
    }
    let t0 = std::time::Instant::now();
    let ds = dataset_for(&sc);
    ds.save_to_dir(std::path::Path::new(out))
        .expect("save dataset");
    println!(
        "built {} ({} nodes, {} edges, dim {}) in {:.2?} -> {out}",
        ds.spec.name,
        ds.spec.num_nodes,
        ds.spec.num_edges,
        ds.spec.feat_dim,
        t0.elapsed()
    );
}

fn cmd_train(flags: HashMap<String, String>) {
    let knobs = env_knobs();
    let system = flags
        .get("system")
        .map(|s| system_by_name(s).unwrap_or_else(|| usage()))
        .unwrap_or(SystemKind::GnnDriveGpu);
    let model = flags
        .get("model")
        .map(|m| model_by_name(m).unwrap_or_else(|| usage()))
        .unwrap_or(ModelKind::GraphSage);
    let epochs: u64 = flags
        .get("epochs")
        .map(|v| v.parse().expect("--epochs"))
        .unwrap_or(3);
    let max_batches = flags
        .get("max-batches")
        .map(|v| v.parse().expect("--max-batches"))
        .map(Some)
        .unwrap_or(knobs.max_batches);

    // Resolve the dataset: saved directory or named analog.
    let (sc, ds) = if let Some(dir) = flags.get("data") {
        let ssd = SimSsd::new(SsdProfile::pm883_repro());
        let ds =
            Arc::new(Dataset::load_from_dir(std::path::Path::new(dir), ssd).expect("load dataset"));
        let mini = dataset_by_name(&ds.spec.name).unwrap_or(MiniDataset::Papers100M);
        let mut sc = Scenario::default_for(mini, &knobs);
        sc.dim = ds.spec.feat_dim;
        (sc, ds)
    } else {
        let name = flags
            .get("name")
            .map(String::as_str)
            .unwrap_or("papers100m-mini");
        let mini = dataset_by_name(name).unwrap_or_else(|| usage());
        let mut sc = Scenario::default_for(mini, &knobs);
        if let Some(d) = flags.get("dim") {
            sc.dim = d.parse().expect("--dim");
        }
        let ds = dataset_for(&sc);
        (sc, ds)
    };

    let mut sc = sc;
    sc.model = model;
    if let Some(b) = flags.get("batch") {
        sc.batch_size = b.parse().expect("--batch");
    }
    if let Some(g) = flags.get("memory-gb") {
        sc.memory_gb = g.parse().expect("--memory-gb");
    }

    let mut sys = match build_system(system, &sc, &ds) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{}: failed to build: {e}", system.name());
            std::process::exit(1);
        }
    };
    println!(
        "training {} / {} on {} (budget {} MiB, batch {})",
        sys.name(),
        model.name(),
        ds.spec.name,
        sc.budget_bytes() / (1024 * 1024),
        sc.batch_size
    );
    println!("epoch -1: val acc {:.1}%", sys.evaluate() * 100.0);
    let monitor = gnndrive_telemetry::Monitor::start(std::time::Duration::from_millis(100));
    let t0 = std::time::Instant::now();
    let mut last_loss = 0.0f64;
    let mut total_batches = 0usize;
    for e in 0..epochs {
        let r = sys.train_epoch(e, max_batches);
        if let Some(err) = &r.error {
            eprintln!("epoch {e} aborted: {err}");
            std::process::exit(1);
        }
        println!(
            "epoch {e}: {} batches, wall {:.2?} (extrapolated {:.2?}), loss {:.3}, val acc {:.1}%",
            r.batches,
            r.wall,
            r.extrapolated_wall(),
            r.loss,
            sys.evaluate() * 100.0
        );
        last_loss = r.loss as f64;
        total_batches += r.batches;
    }
    let wall = t0.elapsed();
    let series = monitor.stop();
    let mut report = collect_report(
        &format!("train.{}", slug(&sys.name())),
        &scenario_desc(&sc),
        series,
    );
    report.add_scalar("epochs", epochs as f64);
    report.add_scalar("batches", total_batches as f64);
    report.add_scalar("wall_secs", wall.as_secs_f64());
    report.add_scalar("final_loss", last_loss);
    report.add_scalar("val_acc", sys.evaluate());
    write_report(&report);
    if flags.contains_key("checkpoint") {
        eprintln!("note: --checkpoint requires the library API (Pipeline::model_mut().save()); the CLI trains behind the TrainingSystem trait which does not expose weights.");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) if cmd == "dataset" => match rest.split_first() {
            Some((sub, flags)) if sub == "build" => cmd_dataset_build(parse_flags(flags)),
            _ => usage(),
        },
        Some((cmd, rest)) if cmd == "train" => cmd_train(parse_flags(rest)),
        Some((cmd, _)) if cmd == "systems" => {
            for k in [
                SystemKind::GnnDriveGpu,
                SystemKind::GnnDriveCpu,
                SystemKind::PygPlus,
                SystemKind::Ginex,
                SystemKind::Marius,
            ] {
                println!("{}", k.name());
            }
        }
        _ => usage(),
    }
}
