//! Teardown-race stress test: `reset()` / `reset_metrics()` racing
//! in-flight `StateGuard` drops, late `register_thread` calls, and live
//! metric handles must never panic, underflow, or double-count.
//!
//! This is the shutdown/epoch-boundary scenario: the harness resets the
//! registries between systems while worker threads from the previous
//! system are still winding down.

use gnndrive_telemetry as telemetry;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[test]
fn reset_races_inflight_guards_and_late_registration() {
    let stop = Arc::new(AtomicBool::new(false));
    let local_ops = Arc::new(AtomicU64::new(0));
    let mut workers = Vec::new();
    for i in 0..6u64 {
        let stop = Arc::clone(&stop);
        let local_ops = Arc::clone(&local_ops);
        workers.push(std::thread::spawn(move || {
            let class = if i % 2 == 0 {
                telemetry::ThreadClass::Cpu
            } else {
                telemetry::ThreadClass::Gpu
            };
            // A handle cached before any reset: reset_metrics() must keep
            // it live (zeroed in place, not replaced).
            let ops = telemetry::counter("stress.ops");
            let depth = telemetry::gauge("stress.depth");
            let lat = telemetry::histogram_ns("stress.lat");
            while !stop.load(Ordering::Relaxed) {
                // Late / repeated registration racing reset().
                telemetry::register_thread(class);
                {
                    let _g = telemetry::state(telemetry::State::Compute);
                    let _inner = telemetry::state(telemetry::State::IoWait);
                }
                // Mirror first so `registry <= mirror` holds at every
                // instant the main thread might snapshot.
                local_ops.fetch_add(1, Ordering::Relaxed);
                ops.inc();
                depth.set(i as i64 - 3);
                lat.record(i * 100 + 1);
                // A fresh get-or-register lookup racing reset_metrics().
                local_ops.fetch_add(1, Ordering::Relaxed);
                telemetry::counter("stress.ops").inc();
            }
        }));
    }

    let deadline = Instant::now() + Duration::from_millis(300);
    while Instant::now() < deadline {
        telemetry::reset();
        let _ = telemetry::snapshot();
        telemetry::reset_metrics();
        let snap = telemetry::snapshot_metrics();
        // Never more counted than actually performed (no double-count),
        // even while increments race the reset.
        assert!(
            snap.counter("stress.ops") <= local_ops.load(Ordering::Relaxed),
            "registry counted more ops than the workers performed"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("worker panicked");
    }

    // The registry must still be consistent after the storm.
    telemetry::reset_metrics();
    let ops = telemetry::counter("stress.ops");
    assert_eq!(ops.get(), 0, "reset_metrics left a residue");
    ops.inc();
    assert_eq!(ops.get(), 1);
    let snap = telemetry::snapshot_metrics();
    assert_eq!(snap.counter("stress.ops"), 1);

    // And the thread-state side still takes registrations and guards.
    telemetry::reset();
    telemetry::register_thread(telemetry::ThreadClass::Cpu);
    {
        let _g = telemetry::state(telemetry::State::Compute);
        std::thread::sleep(Duration::from_millis(2));
    }
    let totals = telemetry::snapshot();
    let nanos = totals
        .class(telemetry::ThreadClass::Cpu)
        .nanos(telemetry::State::Compute);
    assert!(
        nanos >= 1_000_000,
        "guard time lost after stress: {nanos}ns"
    );
    assert!(nanos < u64::MAX / 2, "guard time underflowed: {nanos}ns");
}
