//! Thread-state telemetry for the GNNDrive reproduction.
//!
//! The paper's Figures 3 and 11 plot, over a window of three training epochs,
//! the CPU utilization, GPU utilization, and the ratio of time spent waiting
//! on I/O. This crate provides the measurement substrate: every worker thread
//! registers itself under a [`ThreadClass`], then brackets its activity with
//! [`StateGuard`]s. A [`Monitor`] samples the accumulated per-class,
//! per-state busy time at a fixed interval and turns the deltas into
//! utilization ratios.
//!
//! The accounting is real: a thread blocked inside the storage stack really
//! is parked, and the nanoseconds it spends parked are attributed to
//! [`State::IoWait`]. Nothing here is modeled — the model lives in the
//! storage and device crates; telemetry only observes.

pub mod attribution;
pub mod crash;
mod histogram;
pub mod json;
pub mod metrics;
mod monitor;
pub mod persist;
mod registry;
mod report;
mod trace;

pub use attribution::{
    aggregate as aggregate_attribution, record_batch as record_batch_attribution, wait_timer,
    waits_take, AttributionReport, BatchAttribution, BottleneckVerdict, WaitKind, WaitTimer,
    WaitTotals,
};
pub use crash::CrashCut;
pub use histogram::Histogram;
pub use json::Json;
pub use persist::{atomic_write_file, StagedFile};
pub use metrics::{
    counter, gauge, histogram_ns, reset_metrics, snapshot_metrics, Counter, Gauge, HistSummary,
    HistogramHandle, MetricValue, MetricsSnapshot, Scope,
};
pub use monitor::{Monitor, SeriesPoint};
pub use registry::{
    register_thread, reset, set_gpu_count, snapshot, state, state_as, ClassTotals, StateGuard,
    Totals,
};
pub use report::{ParsedReport, RunReport};
pub use trace::{
    export_chrome_trace, record_span, span, span_cat, trace_disable, trace_enable, trace_enabled,
    trace_take, SpanGuard, TraceSpan,
};

/// The kind of execution resource a thread stands in for.
///
/// In the paper's testbed, sampling/extraction/training-driver threads run on
/// the CPU while CUDA kernels run on the GPU. In this reproduction the
/// "GPU" is a simulated device whose compute worker registers as
/// [`ThreadClass::Gpu`]; its busy fraction is reported as GPU utilization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadClass {
    /// Host CPU worker (samplers, extractors, releasers, loaders, ...).
    Cpu,
    /// Simulated accelerator compute worker.
    Gpu,
}

/// What a registered thread is doing right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum State {
    /// Parked or between tasks.
    Idle,
    /// Doing useful work (sampling, math, cache management, ...).
    Compute,
    /// Blocked waiting for a storage-device or transfer completion.
    IoWait,
}

impl State {
    pub(crate) const COUNT: usize = 3;

    pub(crate) fn index(self) -> usize {
        match self {
            State::Idle => 0,
            State::Compute => 1,
            State::IoWait => 2,
        }
    }
}

impl ThreadClass {
    pub(crate) const COUNT: usize = 2;

    pub(crate) fn index(self) -> usize {
        match self {
            ThreadClass::Cpu => 0,
            ThreadClass::Gpu => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn states_have_distinct_indices() {
        assert_ne!(State::Idle.index(), State::Compute.index());
        assert_ne!(State::Compute.index(), State::IoWait.index());
    }

    #[test]
    fn guard_accumulates_compute_time() {
        reset();
        register_thread(ThreadClass::Cpu);
        {
            let _g = state(State::Compute);
            std::thread::sleep(Duration::from_millis(5));
        }
        let totals = snapshot();
        let cpu = totals.class(ThreadClass::Cpu);
        assert!(
            cpu.nanos(State::Compute) >= 4_000_000,
            "expected >=4ms compute, got {}ns",
            cpu.nanos(State::Compute)
        );
    }

    #[test]
    fn snapshot_includes_in_progress_interval() {
        reset();
        register_thread(ThreadClass::Cpu);
        let _g = state(State::Compute);
        std::thread::sleep(Duration::from_millis(5));
        // No transition since entering Compute; snapshot must still see it.
        let totals = snapshot();
        assert!(totals.class(ThreadClass::Cpu).nanos(State::Compute) >= 4_000_000);
    }

    #[test]
    fn nested_guards_restore_previous_state() {
        reset();
        register_thread(ThreadClass::Cpu);
        let _outer = state(State::Compute);
        {
            let _inner = state(State::IoWait);
            std::thread::sleep(Duration::from_millis(3));
        }
        std::thread::sleep(Duration::from_millis(3));
        let totals = snapshot();
        let cpu = totals.class(ThreadClass::Cpu);
        assert!(cpu.nanos(State::IoWait) >= 2_000_000);
        assert!(cpu.nanos(State::Compute) >= 2_000_000);
    }
}
