//! Per-batch span tracing with Chrome trace-event export.
//!
//! Each stage of a mini-batch's life (sample → extract → transfer →
//! compute → release) is bracketed by an RAII [`SpanGuard`]. Completed
//! spans land in a per-thread buffer (one uncontended mutex each, drained
//! only at export), so the hot path is: one atomic load when tracing is
//! off; a clock read, a clock read, and a thread-local push when it is on.
//!
//! [`export_chrome_trace`] turns the spans into the Chrome trace-event JSON
//! format (`{"traceEvents": [...]}` with `ph: "X"` complete events), which
//! loads directly in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing` — a single trace of one epoch visually shows the
//! sync-stall vs. async-overlap distinction the paper's Figs 3/11 argue
//! about. See EXPERIMENTS.md for the capture recipe.

use crate::json::Json;
use crate::registry::origin;
use gnndrive_sync::{LockRank, OrderedMutex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One completed stage of one batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// Stage name: `sample`, `extract`, `transfer`, `compute`, `release`.
    pub stage: &'static str,
    /// Category shown in the viewer (defaults to `pipeline`).
    pub cat: &'static str,
    /// Mini-batch id this span belongs to (`u64::MAX` = not batch-scoped).
    pub batch: u64,
    /// Small dense id of the recording thread (trace-local, not the OS tid).
    pub tid: u64,
    /// Start, nanoseconds since the telemetry origin.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

struct TraceGlobal {
    enabled: AtomicBool,
    buffers: OrderedMutex<Vec<Arc<OrderedMutex<Vec<TraceSpan>>>>>,
    next_tid: AtomicU64,
}

static TRACE: TraceGlobal = TraceGlobal {
    enabled: AtomicBool::new(false),
    buffers: OrderedMutex::new(LockRank::Telemetry, Vec::new()),
    next_tid: AtomicU64::new(1),
};

struct TlsBuffer {
    tid: u64,
    spans: Arc<OrderedMutex<Vec<TraceSpan>>>,
}

thread_local! {
    static BUFFER: TlsBuffer = {
        let spans = Arc::new(OrderedMutex::new(LockRank::Telemetry, Vec::new()));
        TRACE.buffers.lock().push(Arc::clone(&spans));
        TlsBuffer {
            tid: TRACE.next_tid.fetch_add(1, Ordering::Relaxed),
            spans,
        }
    };
}

/// Start recording spans (until [`trace_disable`]).
pub fn trace_enable() {
    TRACE.enabled.store(true, Ordering::Relaxed);
}

/// Stop recording. Already-collected spans stay buffered until
/// [`trace_take`].
pub fn trace_disable() {
    TRACE.enabled.store(false, Ordering::Relaxed);
}

pub fn trace_enabled() -> bool {
    TRACE.enabled.load(Ordering::Relaxed)
}

/// Drain every thread's buffered spans, sorted by start time.
pub fn trace_take() -> Vec<TraceSpan> {
    let buffers = TRACE.buffers.lock();
    let mut out = Vec::new();
    for b in buffers.iter() {
        out.append(&mut b.lock());
    }
    drop(buffers);
    out.sort_by_key(|s| (s.start_ns, s.batch));
    out
}

/// RAII recorder for one stage of one batch. The span runs from guard
/// creation to drop; when tracing is disabled the guard is inert.
pub struct SpanGuard {
    active: Option<(&'static str, &'static str, u64, Instant)>,
}

/// Open a span for `stage` of batch `batch` (see [`span_cat`] for
/// non-pipeline categories).
pub fn span(stage: &'static str, batch: u64) -> SpanGuard {
    span_cat(stage, "pipeline", batch)
}

/// Open a span under an explicit category.
pub fn span_cat(stage: &'static str, cat: &'static str, batch: u64) -> SpanGuard {
    if !trace_enabled() {
        return SpanGuard { active: None };
    }
    SpanGuard {
        active: Some((stage, cat, batch, Instant::now())),
    }
}

/// Record a span retroactively (e.g. an epoch-slice verdict band computed
/// after the fact). `started` anchors the span on the same clock the RAII
/// guards use; a no-op while tracing is disabled.
pub fn record_span(
    stage: &'static str,
    cat: &'static str,
    batch: u64,
    started: Instant,
    dur: std::time::Duration,
) {
    if !trace_enabled() {
        return;
    }
    let start_ns = started
        .saturating_duration_since(origin())
        .as_nanos()
        .min(u128::from(u64::MAX)) as u64;
    let dur_ns = dur.as_nanos().min(u128::from(u64::MAX)) as u64;
    BUFFER.with(|b| {
        b.spans.lock().push(TraceSpan {
            stage,
            cat,
            batch,
            tid: b.tid,
            start_ns,
            dur_ns,
        });
    });
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((stage, cat, batch, started)) = self.active.take() else {
            return;
        };
        let dur_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let start_ns = started
            .saturating_duration_since(origin())
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64;
        BUFFER.with(|b| {
            b.spans.lock().push(TraceSpan {
                stage,
                cat,
                batch,
                tid: b.tid,
                start_ns,
                dur_ns,
            });
        });
    }
}

/// Serialize spans as Chrome trace-event JSON (Perfetto-loadable).
///
/// Timestamps are microseconds (`ts`/`dur`), per the format; batch ids ride
/// in `args.batch`.
pub fn export_chrome_trace(spans: &[TraceSpan]) -> String {
    let mut events = Vec::with_capacity(spans.len());
    for s in spans {
        let mut e = Json::obj();
        e.set("name", s.stage.into())
            .set("cat", s.cat.into())
            .set("ph", "X".into())
            .set("ts", Json::Num(s.start_ns as f64 / 1000.0))
            .set("dur", Json::Num(s.dur_ns as f64 / 1000.0))
            .set("pid", 1u64.into())
            .set("tid", s.tid.into());
        if s.batch != u64::MAX {
            let mut args = Json::obj();
            args.set("batch", s.batch.into());
            e.set("args", args);
        }
        events.push(e);
    }
    let mut doc = Json::obj();
    doc.set("traceEvents", Json::Arr(events))
        .set("displayTimeUnit", "ms".into());
    doc.to_json_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    // The collector is process-global; serialize the tests that drain it.
    // Pipeline rank: held across calls that take the Telemetry-ranked
    // trace locks.
    static TEST_LOCK: OrderedMutex<()> = OrderedMutex::new(LockRank::Pipeline, ());

    #[test]
    fn spans_record_only_when_enabled() {
        let _l = TEST_LOCK.lock();
        let _ = trace_take();
        trace_disable();
        {
            let _s = span("sample", 1);
        }
        assert!(trace_take()
            .iter()
            .all(|s| !(s.stage == "sample" && s.batch == 1)));
        trace_enable();
        {
            let _s = span("sample", 2);
            std::thread::sleep(Duration::from_millis(2));
        }
        trace_disable();
        let spans = trace_take();
        let s = spans
            .iter()
            .find(|s| s.stage == "sample" && s.batch == 2)
            .expect("span recorded");
        assert!(s.dur_ns >= 1_000_000);
    }

    #[test]
    fn threads_get_distinct_tids() {
        let _l = TEST_LOCK.lock();
        let _ = trace_take();
        trace_enable();
        let handles: Vec<_> = (0..3)
            .map(|i| {
                std::thread::spawn(move || {
                    let _s = span("extract", i);
                    std::thread::sleep(Duration::from_millis(1));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        trace_disable();
        let spans = trace_take();
        let tids: std::collections::HashSet<u64> = spans
            .iter()
            .filter(|s| s.stage == "extract")
            .map(|s| s.tid)
            .collect();
        assert!(tids.len() >= 3, "expected distinct tids, got {tids:?}");
    }

    #[test]
    fn retroactive_spans_land_in_the_buffer() {
        let _l = TEST_LOCK.lock();
        let _ = trace_take();
        trace_disable();
        record_span(
            "balanced",
            "verdict",
            u64::MAX,
            Instant::now(),
            Duration::from_millis(1),
        );
        assert!(trace_take().iter().all(|s| s.cat != "verdict"));
        trace_enable();
        let started = Instant::now();
        record_span(
            "balanced",
            "verdict",
            u64::MAX,
            started,
            Duration::from_millis(7),
        );
        trace_disable();
        let spans = trace_take();
        let s = spans
            .iter()
            .find(|s| s.cat == "verdict")
            .expect("verdict span recorded");
        assert_eq!(s.stage, "balanced");
        assert_eq!(s.dur_ns, 7_000_000);
    }

    #[test]
    fn chrome_export_is_valid_json() {
        let spans = vec![
            TraceSpan {
                stage: "extract",
                cat: "pipeline",
                batch: 4,
                tid: 2,
                start_ns: 1_500,
                dur_ns: 2_000,
            },
            TraceSpan {
                stage: "compute",
                cat: "pipeline",
                batch: u64::MAX,
                tid: 1,
                start_ns: 4_000,
                dur_ns: 1_000,
            },
        ];
        let text = export_chrome_trace(&spans);
        let doc = Json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("extract"));
        assert_eq!(events[0].get("ts").unwrap().as_f64(), Some(1.5));
        assert_eq!(
            events[0]
                .get("args")
                .unwrap()
                .get("batch")
                .unwrap()
                .as_u64(),
            Some(4)
        );
        assert!(events[1].get("args").is_none());
    }
}
