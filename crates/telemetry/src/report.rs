//! Machine-readable run reports.
//!
//! Every repro binary (and the end-to-end tests) can assemble a
//! [`RunReport`] — a metrics snapshot, per-stage latency percentiles, the
//! monitor's utilization series, and free-form scalars — and write it as a
//! JSON artifact next to the existing text tables. Reports from successive
//! PRs form a perf trajectory that tooling can diff without scraping text.

use crate::json::Json;
use crate::metrics::{HistSummary, MetricsSnapshot};
use crate::{Histogram, SeriesPoint};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-process artifact sequence. Two runs writing the same report name
/// into the same directory used to silently overwrite each other; the
/// sequence number keeps every run's artifact distinct.
static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

/// A structured record of one benchmark/training run.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Artifact name, e.g. `fig3_utilization.pygplus` (also the file stem).
    pub name: String,
    /// Free-form description of the scenario (dataset, model, budget...).
    pub scenario: String,
    /// Snapshot of the global metrics registry at the end of the run.
    pub metrics: MetricsSnapshot,
    /// Per-stage latency percentiles, e.g. `("extract", ...)`.
    pub stages: Vec<(String, HistSummary)>,
    /// Utilization time series from [`crate::Monitor`].
    pub series: Vec<SeriesPoint>,
    /// Free-form named scalars (wall seconds, loss, epochs...).
    pub scalars: Vec<(String, f64)>,
    /// Free-form named string labels (e.g. `bottleneck_verdict`).
    pub labels: Vec<(String, String)>,
}

impl RunReport {
    pub fn new(name: &str) -> RunReport {
        RunReport {
            name: name.to_string(),
            ..RunReport::default()
        }
    }

    /// Summarize `hist` as stage `name`'s latency distribution.
    pub fn add_stage(&mut self, name: &str, hist: &Histogram) {
        self.stages.push((name.to_string(), HistSummary::of(hist)));
    }

    pub fn add_stage_summary(&mut self, name: &str, summary: HistSummary) {
        self.stages.push((name.to_string(), summary));
    }

    pub fn add_scalar(&mut self, name: &str, value: f64) {
        self.scalars.push((name.to_string(), value));
    }

    pub fn stage(&self, name: &str) -> Option<&HistSummary> {
        self.stages.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    pub fn scalar(&self, name: &str) -> Option<f64> {
        self.scalars
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    pub fn add_label(&mut self, name: &str, value: &str) {
        self.labels.push((name.to_string(), value.to_string()));
    }

    pub fn label(&self, name: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    pub fn to_json(&self) -> Json {
        let mut stages = Json::obj();
        for (name, summary) in &self.stages {
            stages.set(name, summary.to_json());
        }
        let series = Json::Arr(
            self.series
                .iter()
                .map(|p| {
                    let mut o = Json::obj();
                    o.set("t_secs", p.t_secs.into())
                        .set("cpu_util", p.cpu_util.into())
                        .set("gpu_util", p.gpu_util.into())
                        .set("io_wait", p.io_wait.into());
                    o
                })
                .collect(),
        );
        let mut scalars = Json::obj();
        for (name, value) in &self.scalars {
            scalars.set(name, (*value).into());
        }
        let mut labels = Json::obj();
        for (name, value) in &self.labels {
            labels.set(name, value.as_str().into());
        }
        let mut doc = Json::obj();
        doc.set("name", self.name.as_str().into())
            .set("scenario", self.scenario.as_str().into())
            .set("metrics", self.metrics.to_json())
            .set("stages", stages)
            .set("series", series)
            .set("scalars", scalars)
            .set("labels", labels);
        doc
    }

    /// Parse a report previously produced by [`RunReport::to_json`].
    ///
    /// The metrics snapshot is returned as raw JSON via
    /// [`ParsedReport::metrics`] (a snapshot of atomics cannot be
    /// reconstructed); everything else round-trips structurally.
    pub fn parse(text: &str) -> Result<ParsedReport, String> {
        let doc = Json::parse(text)?;
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or("missing name")?
            .to_string();
        let scenario = doc
            .get("scenario")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let metrics = doc.get("metrics").cloned().ok_or("missing metrics")?;
        let mut stages = Vec::new();
        if let Some(obj) = doc.get("stages").and_then(Json::as_object) {
            for (stage, j) in obj {
                let summary =
                    HistSummary::from_json(j).ok_or_else(|| format!("bad stage {stage:?}"))?;
                stages.push((stage.clone(), summary));
            }
        }
        let mut series = Vec::new();
        if let Some(points) = doc.get("series").and_then(Json::as_array) {
            for p in points {
                series.push(SeriesPoint {
                    t_secs: p.get("t_secs").and_then(Json::as_f64).ok_or("bad point")?,
                    cpu_util: p.get("cpu_util").and_then(Json::as_f64).unwrap_or(0.0),
                    gpu_util: p.get("gpu_util").and_then(Json::as_f64).unwrap_or(0.0),
                    io_wait: p.get("io_wait").and_then(Json::as_f64).unwrap_or(0.0),
                });
            }
        }
        let mut scalars = Vec::new();
        if let Some(obj) = doc.get("scalars").and_then(Json::as_object) {
            for (name, v) in obj {
                scalars.push((name.clone(), v.as_f64().ok_or("bad scalar")?));
            }
        }
        let mut labels = Vec::new();
        if let Some(obj) = doc.get("labels").and_then(Json::as_object) {
            for (name, v) in obj {
                labels.push((name.clone(), v.as_str().ok_or("bad label")?.to_string()));
            }
        }
        Ok(ParsedReport {
            name,
            scenario,
            metrics,
            stages,
            series,
            scalars,
            labels,
        })
    }

    /// Write `<dir>/<name>.r<seq>.json`, creating `dir` as needed. The
    /// `r<seq>` component is a monotonic run sequence so that repeated
    /// runs of the same scenario (bench sweeps, test suites, successive
    /// CLI invocations) land as distinct artifacts instead of silently
    /// overwriting each other: a process-local counter supplies the
    /// starting sequence, and create-new publication skips over artifacts
    /// earlier processes left behind. Returns the artifact path.
    ///
    /// The write is crash-atomic: the full JSON is staged to a durable
    /// temp file first and hard-linked into its final name, so a crash at
    /// any instant leaves either a complete artifact or none — never the
    /// truncated `.json` that used to poison `trajectory compare`.
    pub fn write_to_dir(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let bytes = self.to_json().to_json_string().into_bytes();
        let seq = RUN_SEQ.fetch_add(1, Ordering::Relaxed);
        let mut path = dir.join(format!("{}.r{seq:03}.json", self.name));
        let staged = crate::persist::stage("report.save", &path, &bytes)?;
        loop {
            match staged.publish_new(&path) {
                Ok(()) => {
                    staged.discard();
                    return Ok(path);
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let seq = RUN_SEQ.fetch_add(1, Ordering::Relaxed);
                    path = dir.join(format!("{}.r{seq:03}.json", self.name));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// A report read back from its JSON artifact (see [`RunReport::parse`]).
#[derive(Debug, Clone)]
pub struct ParsedReport {
    pub name: String,
    pub scenario: String,
    /// The metrics snapshot as a JSON object: metric name →
    /// `{type, value}` / `{type, count, p50_ns, ...}`.
    pub metrics: Json,
    pub stages: Vec<(String, HistSummary)>,
    pub series: Vec<SeriesPoint>,
    pub scalars: Vec<(String, f64)>,
    pub labels: Vec<(String, String)>,
}

impl ParsedReport {
    pub fn scalar(&self, name: &str) -> Option<f64> {
        self.scalars
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    pub fn label(&self, name: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Names of all metrics in the snapshot.
    pub fn metric_names(&self) -> Vec<&str> {
        self.metrics
            .as_object()
            .map(|m| m.keys().map(String::as_str).collect())
            .unwrap_or_default()
    }

    pub fn counter(&self, name: &str) -> Option<u64> {
        self.metrics.get(name)?.get("value")?.as_u64()
    }

    pub fn stage(&self, name: &str) -> Option<&HistSummary> {
        self.stages.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{counter, snapshot_metrics};

    #[test]
    fn report_round_trips_through_json() {
        counter("test.report.reads").add(11);
        let mut h = Histogram::new();
        for v in [10_000u64, 20_000, 30_000] {
            h.record(v);
        }
        let mut r = RunReport::new("unit.report");
        r.scenario = "tiny".into();
        r.metrics = snapshot_metrics();
        r.add_stage("extract", &h);
        r.series.push(SeriesPoint {
            t_secs: 0.1,
            cpu_util: 0.5,
            gpu_util: 0.25,
            io_wait: 0.125,
        });
        r.add_scalar("wall_secs", 1.5);
        r.add_label("bottleneck_verdict", "compute_bound");

        let text = r.to_json().to_json_string();
        let p = RunReport::parse(&text).unwrap();
        assert_eq!(p.name, "unit.report");
        assert_eq!(p.scenario, "tiny");
        assert!(p.counter("test.report.reads").unwrap() >= 11);
        let extract = p.stage("extract").unwrap();
        assert_eq!(extract.count, 3);
        assert_eq!(extract.max_ns, 30_000);
        assert_eq!(p.series.len(), 1);
        assert!((p.series[0].gpu_util - 0.25).abs() < 1e-12);
        assert_eq!(p.scalars, vec![("wall_secs".to_string(), 1.5)]);
        assert_eq!(p.scalar("wall_secs"), Some(1.5));
        assert_eq!(p.label("bottleneck_verdict"), Some("compute_bound"));
        assert_eq!(p.label("missing"), None);
    }

    #[test]
    fn reports_without_labels_still_parse() {
        // Artifacts written before the labels field existed.
        let p = RunReport::parse(r#"{"name":"old","metrics":{}}"#).unwrap();
        assert_eq!(p.name, "old");
        assert!(p.labels.is_empty());
    }

    #[test]
    fn writes_artifact_file() {
        let _g = crate::crash::tests::GATE.lock();
        let dir = std::env::temp_dir().join("gnndrive-report-test");
        let mut r = RunReport::new("unit.write");
        r.metrics = snapshot_metrics();
        let path = r.write_to_dir(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let p = RunReport::parse(&text).unwrap();
        assert_eq!(p.name, "unit.write");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn repeated_runs_land_as_distinct_artifacts() {
        let _g = crate::crash::tests::GATE.lock();
        let dir = std::env::temp_dir().join("gnndrive-report-seq-test");
        let mut r = RunReport::new("unit.seq");
        r.metrics = snapshot_metrics();
        let first = r.write_to_dir(&dir).unwrap();
        let second = r.write_to_dir(&dir).unwrap();
        assert_ne!(first, second, "same-name reports must not overwrite");
        assert!(first.exists() && second.exists());

        // Artifacts left by an *earlier process* (its RUN_SEQ restarted
        // at 0) occupy sequence slots on disk only; later writes must
        // skip over them, never truncate them. Plant sentinels on the
        // next few slots (a few, because parallel tests also consume
        // sequence numbers) and check the write lands past them.
        let next = RUN_SEQ.load(Ordering::Relaxed);
        let planted: Vec<PathBuf> = (next..next + 4)
            .map(|s| dir.join(format!("unit.seq.r{s:03}.json")))
            .collect();
        for p in &planted {
            std::fs::write(p, "sentinel").unwrap();
        }
        let third = r.write_to_dir(&dir).unwrap();
        assert!(!planted.contains(&third), "skipped the occupied slots");
        for p in &planted {
            assert_eq!(
                std::fs::read_to_string(p).unwrap(),
                "sentinel",
                "pre-existing artifacts survive later writes"
            );
        }
        for p in planted.iter().chain([&first, &second, &third]) {
            let _ = std::fs::remove_file(p);
        }
    }
}
