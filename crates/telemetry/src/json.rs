//! Minimal JSON document model, writer, and parser.
//!
//! The workspace intentionally keeps its dependency set to the approved
//! offline crates, which excludes serde — so run reports and Chrome trace
//! exports are built on this small hand-rolled JSON layer instead. The
//! writer emits strictly valid JSON (escaped strings, finite numbers); the
//! parser accepts the full JSON grammar and exists mainly so tests can
//! round-trip artifacts and assert on their contents.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed or under-construction JSON value. Objects preserve sorted key
/// order (BTreeMap) so exports are deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn obj() -> Json {
        Json::Obj(BTreeMap::new())
    }

    /// Insert `key: value` (builder-style; panics if not an object).
    pub fn set(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Obj(m) => {
                m.insert(key.to_string(), value);
            }
            _ => panic!("Json::set on non-object"),
        }
        self
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().filter(|n| *n >= 0.0).map(|n| n as u64)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Serialize to a compact JSON string.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(v) => {
                out.push('[');
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.write(out);
                }
                out.push(']');
            }
            Json::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Returns a message with a byte offset on error.
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            m.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed for our exports;
                            // map unpaired surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // at char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s_rest = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s_rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let mut doc = Json::obj();
        doc.set("name", "run \"A\"\n".into())
            .set("count", 42u64.into())
            .set("ratio", 0.25.into())
            .set("ok", Json::Bool(true))
            .set("none", Json::Null)
            .set(
                "series",
                Json::Arr(vec![1u64.into(), 2u64.into(), 3u64.into()]),
            );
        let text = doc.to_json_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("count").unwrap().as_u64(), Some(42));
        assert_eq!(back.get("name").unwrap().as_str(), Some("run \"A\"\n"));
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(7.0).to_json_string(), "7");
        assert_eq!(Json::Num(0.5).to_json_string(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_json_string(), "null");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("{} x").is_err());
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse("{\"a\":\"x\\ny\\u0041z\",\"b\":[-1.5e2]}").unwrap();
        assert_eq!(v.get("a").unwrap().as_str(), Some("x\nyAz"));
        assert_eq!(
            v.get("b").unwrap().as_array().unwrap()[0].as_f64(),
            Some(-150.0)
        );
    }
}
