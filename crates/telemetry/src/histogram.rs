//! Log-bucketed latency histogram (HdrHistogram-lite).
//!
//! Batch latencies in the pipeline span four orders of magnitude
//! (microseconds for buffer hits, seconds for cold congested batches), so
//! percentiles need exponential buckets: 2 % relative error is plenty for
//! the tail panels.

/// Exponentially-bucketed histogram over `u64` values (typically
/// nanoseconds). 16 sub-buckets per octave ≈ 4.4 % worst-case relative
/// error.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    /// bucket index = octave * SUBBUCKETS + sub; value 0 goes to bucket 0.
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

const SUBBUCKETS: usize = 16;

fn bucket_of(v: u64) -> usize {
    if v < SUBBUCKETS as u64 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros() as usize;
    let shift = octave.saturating_sub(4); // keep 4 significant bits
    let sub = ((v >> shift) as usize) & (SUBBUCKETS - 1);
    (octave - 3) * SUBBUCKETS + sub
}

/// Representative (lower-bound) value of a bucket.
fn bucket_floor(idx: usize) -> u64 {
    if idx < SUBBUCKETS {
        return idx as u64;
    }
    let octave = idx / SUBBUCKETS + 3;
    let sub = idx % SUBBUCKETS;
    let shift = octave - 4;
    ((SUBBUCKETS + sub) as u64) << shift
}

impl Histogram {
    pub fn new() -> Self {
        Histogram::default()
    }

    pub fn record(&mut self, v: u64) {
        let b = bucket_of(v);
        if b >= self.buckets.len() {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at quantile `q` in [0, 1] (lower-bound of the bucket holding
    /// it; exact for the recorded max).
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0)) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_floor(i).min(self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, &b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 5, 9, 15] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(1.0), 15);
        assert_eq!(h.max(), 15);
    }

    #[test]
    fn percentiles_are_within_bucket_error() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 1000);
        }
        let p50 = h.percentile(0.5) as f64;
        assert!((p50 - 5_000_000.0).abs() / 5_000_000.0 < 0.07, "p50 {p50}");
        let p99 = h.percentile(0.99) as f64;
        assert!((p99 - 9_900_000.0).abs() / 9_900_000.0 < 0.07, "p99 {p99}");
    }

    #[test]
    fn mean_and_merge() {
        let mut a = Histogram::new();
        a.record(100);
        a.record(300);
        let mut b = Histogram::new();
        b.record(200);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!((a.mean() - 200.0).abs() < 1e-9);
        assert_eq!(a.max(), 300);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        // Every quantile of an empty distribution is 0, including the
        // extremes and out-of-range inputs (percentile clamps q).
        for q in [0.0, 0.5, 1.0, -1.0, 2.0, f64::NAN] {
            assert_eq!(h.percentile(q), 0, "q={q}");
        }
    }

    #[test]
    fn extreme_quantiles_clamp_to_min_and_max() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        // q=0.0 still targets the first recorded value, not zero.
        assert_eq!(h.percentile(0.0), 10);
        assert_eq!(h.percentile(1.0), 30);
        // Out-of-range q clamps rather than panicking or indexing wild.
        assert_eq!(h.percentile(-0.5), h.percentile(0.0));
        assert_eq!(h.percentile(1.5), h.percentile(1.0));
    }

    #[test]
    fn merge_into_empty_copies_the_source() {
        let mut src = Histogram::new();
        for v in [1_000u64, 2_000, 4_000] {
            src.record(v);
        }
        let mut dst = Histogram::new();
        dst.merge(&src);
        assert_eq!(dst.count(), 3);
        assert_eq!(dst.max(), src.max());
        assert_eq!(dst.percentile(0.5), src.percentile(0.5));
        assert!((dst.mean() - src.mean()).abs() < 1e-9);
    }

    #[test]
    fn merge_of_empty_is_a_no_op() {
        let mut h = Histogram::new();
        h.record(500);
        let before = (h.count(), h.max(), h.percentile(1.0));
        h.merge(&Histogram::new());
        assert_eq!((h.count(), h.max(), h.percentile(1.0)), before);
        // Empty-into-empty stays empty.
        let mut e = Histogram::new();
        e.merge(&Histogram::new());
        assert_eq!(e.count(), 0);
        assert_eq!(e.percentile(1.0), 0);
    }

    #[test]
    fn bucket_floor_is_monotone_and_below_values() {
        let mut prev = 0;
        for v in (0..60).map(|e| 1u64 << e) {
            let b = bucket_of(v);
            let f = bucket_floor(b);
            assert!(f <= v, "floor({b}) = {f} > {v}");
            assert!(f >= prev, "floors must be monotone");
            prev = f;
        }
    }
}
