//! Global per-class, per-state time accounting.
//!
//! Every registered thread owns a shared [`ThreadEntry`] recording its
//! class, current state, and the instant of the last transition. Both state
//! transitions *and* snapshots flush elapsed time into global counters, and
//! snapshots flush **all** threads (not just the caller), so a thread parked
//! in a multi-second I/O wait is charged accurately in every monitor
//! sample, not only when it eventually wakes.
//!
//! GPU attribution: simulated-device compute runs on host threads, so a
//! scoped [`state_as`] guard can re-home a thread's time into the GPU class
//! for the duration of a "kernel" — meanwhile the host thread correctly
//! contributes nothing to CPU-compute (in the real system the CPU is
//! blocked on a CUDA sync at that point).

use crate::{State, ThreadClass};
use gnndrive_sync::{LockRank, OrderedMutex};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

const CELLS: usize = ThreadClass::COUNT * State::COUNT;

struct EntryInner {
    class: ThreadClass,
    state: State,
    since: Instant,
    dead: bool,
}

struct ThreadEntry {
    inner: OrderedMutex<EntryInner>,
    generation: u64,
}

struct Global {
    nanos: [AtomicU64; CELLS],
    generation: AtomicU64,
    gpu_count: AtomicUsize,
    entries: OrderedMutex<Vec<Arc<ThreadEntry>>>,
    origin: OrderedMutex<Option<Instant>>,
}

static GLOBAL: Global = Global {
    nanos: [const { AtomicU64::new(0) }; CELLS],
    generation: AtomicU64::new(0),
    gpu_count: AtomicUsize::new(0),
    entries: OrderedMutex::new(LockRank::Telemetry, Vec::new()),
    origin: OrderedMutex::new(LockRank::Telemetry, None),
};

fn cell(class: ThreadClass, state: State) -> usize {
    class.index() * State::COUNT + state.index()
}

/// Flush `entry`'s in-progress interval into the global counters.
/// Caller holds the entry lock.
fn flush_locked(inner: &mut EntryInner, generation: u64, entry_generation: u64, now: Instant) {
    if inner.dead || entry_generation != generation {
        inner.since = now;
        return;
    }
    let elapsed = now.duration_since(inner.since).as_nanos() as u64;
    GLOBAL.nanos[cell(inner.class, inner.state)].fetch_add(elapsed, Ordering::Relaxed);
    inner.since = now;
}

/// TLS handle; dropping it (thread exit) retires the entry so it stops
/// accruing time.
struct TlsHandle {
    entry: Arc<ThreadEntry>,
}

impl Drop for TlsHandle {
    fn drop(&mut self) {
        let generation = GLOBAL.generation.load(Ordering::Acquire);
        let mut inner = self.entry.inner.lock();
        flush_locked(
            &mut inner,
            generation,
            self.entry.generation,
            Instant::now(),
        );
        inner.dead = true;
    }
}

thread_local! {
    static RECORD: RefCell<Option<TlsHandle>> = const { RefCell::new(None) };
}

/// Register the current thread under `class`, starting in [`State::Idle`].
///
/// Threads that never register are invisible to telemetry. Re-registering
/// (e.g. after a [`reset`]) retires the old entry and creates a fresh one.
pub fn register_thread(class: ThreadClass) {
    let generation = GLOBAL.generation.load(Ordering::Acquire);
    GLOBAL.origin.lock().get_or_insert_with(Instant::now);
    let entry = Arc::new(ThreadEntry {
        inner: OrderedMutex::new(
            LockRank::Telemetry,
            EntryInner {
                class,
                state: State::Idle,
                since: Instant::now(),
                dead: false,
            },
        ),
        generation,
    });
    GLOBAL.entries.lock().push(Arc::clone(&entry));
    RECORD.with(|r| {
        // Dropping any previous handle retires its entry.
        *r.borrow_mut() = Some(TlsHandle { entry });
    });
}

/// Declare how many simulated GPU devices exist (denominator for GPU
/// utilization; see [`crate::Monitor`]).
pub fn set_gpu_count(n: usize) {
    GLOBAL.gpu_count.store(n, Ordering::Relaxed);
}

pub(crate) fn gpu_count() -> usize {
    GLOBAL.gpu_count.load(Ordering::Relaxed)
}

/// RAII guard returned by [`state`] / [`state_as`]; restores the previous
/// (class, state) on drop.
pub struct StateGuard {
    previous: Option<(ThreadClass, State)>,
}

fn transition(new: Option<(Option<ThreadClass>, State)>) -> Option<(ThreadClass, State)> {
    let generation = GLOBAL.generation.load(Ordering::Acquire);
    RECORD.with(|r| {
        let r = r.borrow();
        let handle = r.as_ref()?;
        let mut inner = handle.entry.inner.lock();
        flush_locked(
            &mut inner,
            generation,
            handle.entry.generation,
            Instant::now(),
        );
        let old = (inner.class, inner.state);
        if let Some((class, state)) = new {
            if let Some(c) = class {
                inner.class = c;
            }
            inner.state = state;
        }
        Some(old)
    })
}

impl Drop for StateGuard {
    fn drop(&mut self) {
        if let Some((class, state)) = self.previous {
            transition(Some((Some(class), state)));
        }
    }
}

/// Enter `new_state` on the current thread until the guard drops.
/// No-op (but harmless) on unregistered threads.
pub fn state(new_state: State) -> StateGuard {
    StateGuard {
        previous: transition(Some((None, new_state))),
    }
}

/// Enter `new_state` *attributed to `class`* until the guard drops — used
/// by the simulated GPU to account kernel time as GPU compute while the
/// hosting CPU thread is conceptually blocked on the device.
pub fn state_as(class: ThreadClass, new_state: State) -> StateGuard {
    StateGuard {
        previous: transition(Some((Some(class), new_state))),
    }
}

/// Accumulated nanoseconds per state for one thread class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassTotals {
    nanos: [u64; State::COUNT],
}

impl ClassTotals {
    pub fn nanos(&self, state: State) -> u64 {
        self.nanos[state.index()]
    }

    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }
}

/// A snapshot of all counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Totals {
    classes: [ClassTotals; ThreadClass::COUNT],
}

impl Totals {
    pub fn class(&self, class: ThreadClass) -> ClassTotals {
        self.classes[class.index()]
    }

    /// Counter-wise `self - earlier` (saturating).
    pub fn delta_since(&self, earlier: &Totals) -> Totals {
        let mut out = *self;
        for c in 0..ThreadClass::COUNT {
            for s in 0..State::COUNT {
                out.classes[c].nanos[s] =
                    out.classes[c].nanos[s].saturating_sub(earlier.classes[c].nanos[s]);
            }
        }
        out
    }
}

/// Flush every live thread's in-progress interval and read all counters.
pub fn snapshot() -> Totals {
    let generation = GLOBAL.generation.load(Ordering::Acquire);
    let now = Instant::now();
    {
        let mut entries = GLOBAL.entries.lock();
        entries.retain(|e| {
            let mut inner = e.inner.lock();
            flush_locked(&mut inner, generation, e.generation, now);
            !inner.dead
        });
    }
    let mut totals = Totals::default();
    for c in 0..ThreadClass::COUNT {
        for s in 0..State::COUNT {
            totals.classes[c].nanos[s] = GLOBAL.nanos[c * State::COUNT + s].load(Ordering::Relaxed);
        }
    }
    totals
}

/// Zero all counters and invalidate previously registered threads (they
/// must re-register to be accounted again).
pub fn reset() {
    GLOBAL.generation.fetch_add(1, Ordering::AcqRel);
    GLOBAL.entries.lock().clear();
    for n in &GLOBAL.nanos {
        n.store(0, Ordering::Relaxed);
    }
    *GLOBAL.origin.lock() = Some(Instant::now());
}

pub(crate) fn origin() -> Instant {
    let mut origin = GLOBAL.origin.lock();
    *origin.get_or_insert_with(Instant::now)
}
