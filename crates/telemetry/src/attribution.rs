//! Critical-path bottleneck attribution (DESIGN.md §10).
//!
//! The paper's thesis is that disk-based GNN training pays for two
//! distinguishable pathologies — memory contention (𝔒1) and I/O congestion
//! (𝔒2) — yet per-stage latencies alone cannot say *which* one a run is
//! bound by. This module decomposes every trained batch's wall time into
//! exclusive cause-attributed parts:
//!
//! * stage segments measured from shared-clock stamps (`sample`, queue
//!   residency before extract, `extract`, queue residency before train,
//!   `train`) — these telescope, so they conserve wall time by
//!   construction;
//! * the *extract* segment further decomposed from always-on wait timers
//!   at each blocking edge ([`WaitKind`]), leaving `extract − Σwaits` as
//!   exclusive extractor compute.
//!
//! The conservation invariant (asserted by tests, tracked as the
//! `core.attr.other` residual): the decomposed parts must re-sum to the
//! measured batch wall time within 5%. A violated invariant means a timer
//! double-counts (nested guards) or a wait edge leaks outside its stage.
//!
//! Per epoch-slice the records aggregate into a [`BottleneckVerdict`] with
//! supporting fractions, emitted into [`crate::RunReport`]s and the Chrome
//! trace.

use crate::json::Json;
use crate::metrics::{histogram_ns, HistogramHandle};
use crate::report::RunReport;
use std::cell::Cell;
use std::sync::OnceLock;
use std::time::Instant;

/// A blocking edge on the batch critical path that the stage spans alone
/// cannot see. Each kind maps 1:1 to a `core.attr.*` histogram and to one
/// slot of the per-thread accumulator drained by [`waits_take`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WaitKind {
    /// `MemoryGovernor` admission wait (`charge_waiting` stalled until
    /// reclaim freed budget). Memory contention, 𝔒1.
    MemAdmission,
    /// Staging-buffer credit wait (extract blocked until a lease freed).
    /// Memory contention, 𝔒1.
    StagingAcquire,
    /// Feature-buffer standby-slot wait inside `plan_batch`. Memory
    /// contention, 𝔒1.
    SlotWait,
    /// Async ring completion wait (`wait_completion_deadline` parked).
    /// I/O congestion, 𝔒2.
    RingWait,
    /// Blocking read on the synchronous/fallback extract path. I/O
    /// congestion, 𝔒2.
    SyncRead,
    /// Host→device transfer drain (async tail or blocking pacing). I/O
    /// congestion, 𝔒2.
    TransferWait,
    /// `wait_ready` dependency wait on another extractor's in-flight load.
    /// Attributed to I/O: the dependency is an outstanding read.
    ReadyWait,
}

impl WaitKind {
    pub const ALL: [WaitKind; 7] = [
        WaitKind::MemAdmission,
        WaitKind::StagingAcquire,
        WaitKind::SlotWait,
        WaitKind::RingWait,
        WaitKind::SyncRead,
        WaitKind::TransferWait,
        WaitKind::ReadyWait,
    ];

    pub(crate) const COUNT: usize = 7;

    fn index(self) -> usize {
        match self {
            WaitKind::MemAdmission => 0,
            WaitKind::StagingAcquire => 1,
            WaitKind::SlotWait => 2,
            WaitKind::RingWait => 3,
            WaitKind::SyncRead => 4,
            WaitKind::TransferWait => 5,
            WaitKind::ReadyWait => 6,
        }
    }

    /// Registry histogram fed by every [`WaitTimer`] of this kind. The
    /// `core.attr.*` namespace is a closed set enforced by `cargo xtask
    /// lint`; extend the table in DESIGN.md §10 when adding a kind.
    pub fn metric_name(self) -> &'static str {
        match self {
            WaitKind::MemAdmission => "core.attr.mem_admission",
            WaitKind::StagingAcquire => "core.attr.staging_wait",
            WaitKind::SlotWait => "core.attr.slot_wait",
            WaitKind::RingWait => "core.attr.ring_wait",
            WaitKind::SyncRead => "core.attr.sync_read_wait",
            WaitKind::TransferWait => "core.attr.transfer_wait",
            WaitKind::ReadyWait => "core.attr.ready_wait",
        }
    }

    /// Short key used in JSON artifacts.
    pub fn key(self) -> &'static str {
        match self {
            WaitKind::MemAdmission => "mem_admission",
            WaitKind::StagingAcquire => "staging_wait",
            WaitKind::SlotWait => "slot_wait",
            WaitKind::RingWait => "ring_wait",
            WaitKind::SyncRead => "sync_read_wait",
            WaitKind::TransferWait => "transfer_wait",
            WaitKind::ReadyWait => "ready_wait",
        }
    }

    /// Which pathology this wait is evidence of.
    fn is_memory(self) -> bool {
        matches!(
            self,
            WaitKind::MemAdmission | WaitKind::StagingAcquire | WaitKind::SlotWait
        )
    }
}

fn wait_hists() -> &'static [HistogramHandle; WaitKind::COUNT] {
    static HISTS: OnceLock<[HistogramHandle; WaitKind::COUNT]> = OnceLock::new();
    HISTS.get_or_init(|| {
        [
            histogram_ns("core.attr.mem_admission"),
            histogram_ns("core.attr.staging_wait"),
            histogram_ns("core.attr.slot_wait"),
            histogram_ns("core.attr.ring_wait"),
            histogram_ns("core.attr.sync_read_wait"),
            histogram_ns("core.attr.transfer_wait"),
            histogram_ns("core.attr.ready_wait"),
        ]
    })
}

fn residual_hist() -> &'static HistogramHandle {
    static HIST: OnceLock<HistogramHandle> = OnceLock::new();
    HIST.get_or_init(|| histogram_ns("core.attr.other"))
}

thread_local! {
    // Per-thread wait accumulator. An extractor thread owns one batch
    // start-to-finish, so `waits_take()` at batch boundaries yields that
    // batch's waits; other threads just accumulate into histograms.
    static WAITS: Cell<[u64; WaitKind::COUNT]> = const { Cell::new([0; WaitKind::COUNT]) };
}

/// Exclusive blocked time per [`WaitKind`], in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaitTotals {
    ns: [u64; WaitKind::COUNT],
}

impl WaitTotals {
    pub fn get(&self, kind: WaitKind) -> u64 {
        self.ns[kind.index()]
    }

    pub fn add(&mut self, kind: WaitKind, ns: u64) {
        let slot = &mut self.ns[kind.index()];
        *slot = slot.saturating_add(ns);
    }

    pub fn merge(&mut self, other: &WaitTotals) {
        for (a, b) in self.ns.iter_mut().zip(other.ns.iter()) {
            *a = a.saturating_add(*b);
        }
    }

    /// Total blocked time across every kind.
    pub fn sum(&self) -> u64 {
        self.ns.iter().fold(0u64, |a, v| a.saturating_add(*v))
    }

    /// Memory-contention share (𝔒1): admission + staging + slot waits.
    pub fn memory_ns(&self) -> u64 {
        WaitKind::ALL
            .iter()
            .filter(|k| k.is_memory())
            .fold(0u64, |a, k| a.saturating_add(self.get(*k)))
    }

    /// I/O-congestion share (𝔒2): ring/sync/transfer/ready waits.
    pub fn io_ns(&self) -> u64 {
        self.sum().saturating_sub(self.memory_ns())
    }
}

/// RAII wait timer. On drop, the elapsed nanoseconds are added to the
/// calling thread's accumulator (drained by [`waits_take`]) and recorded
/// into the kind's `core.attr.*` histogram. Always on: the cost is two
/// clock reads plus a sharded histogram update per blocking event, paid
/// only on paths that are already parked.
///
/// Timers must not nest — nested guards double-count the overlapped time
/// and the conservation tests will catch it.
pub struct WaitTimer {
    kind: WaitKind,
    started: Instant,
}

/// Start timing a blocking edge of `kind`.
pub fn wait_timer(kind: WaitKind) -> WaitTimer {
    WaitTimer {
        kind,
        started: Instant::now(),
    }
}

impl Drop for WaitTimer {
    fn drop(&mut self) {
        let ns = self.started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        WAITS.with(|w| {
            let mut cur = w.get();
            let slot = &mut cur[self.kind.index()];
            *slot = slot.saturating_add(ns);
            w.set(cur);
        });
        wait_hists()[self.kind.index()].record(ns);
    }
}

/// Drain the calling thread's wait accumulator, returning the totals since
/// the previous take. Called by an extractor at batch boundaries.
pub fn waits_take() -> WaitTotals {
    WAITS.with(|w| WaitTotals {
        ns: w.replace([0; WaitKind::COUNT]),
    })
}

/// One trained batch's critical-path decomposition. All fields are
/// nanoseconds on the pipeline's shared epoch clock; the stage segments
/// telescope (`wall = sample + queue_extract + extract + queue_train +
/// train` up to stamp skew), while `waits` decomposes the extract segment.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchAttribution {
    pub batch: u64,
    /// Sample-start → train-end.
    pub wall_ns: u64,
    /// Exclusive sampler compute.
    pub sample_ns: u64,
    /// Queue residency between sample end and extract start.
    pub queue_extract_ns: u64,
    /// Total extract-stage time (decomposed by `waits`).
    pub extract_ns: u64,
    /// Queue residency between extract end and train start.
    pub queue_train_ns: u64,
    /// Exclusive trainer compute (gather + kernels + optimizer).
    pub train_ns: u64,
    /// Blocking edges inside the extract segment.
    pub waits: WaitTotals,
    /// Device-queue share of the ring waits (from per-completion split).
    pub io_queue_ns: u64,
    /// Device-service share of the ring waits.
    pub io_service_ns: u64,
}

impl BatchAttribution {
    /// Exclusive extractor compute: the extract segment minus its waits.
    pub fn extract_compute_ns(&self) -> u64 {
        self.extract_ns.saturating_sub(self.waits.sum())
    }

    /// Re-sum of the decomposed parts. If wait timers overlapped (a bug),
    /// `Σwaits` exceeds the extract segment and this exceeds the wall.
    pub fn accounted_ns(&self) -> u64 {
        self.sample_ns
            .saturating_add(self.queue_extract_ns)
            .saturating_add(self.waits.sum().max(self.extract_ns))
            .saturating_add(self.queue_train_ns)
            .saturating_add(self.train_ns)
    }

    /// Conservation residual: |wall − Σparts|, tracked as `core.attr.other`.
    pub fn residual_ns(&self) -> u64 {
        self.wall_ns.abs_diff(self.accounted_ns())
    }
}

/// Record a finished batch's residual into the `core.attr.other` histogram.
pub fn record_batch(rec: &BatchAttribution) {
    residual_hist().record(rec.residual_ns());
}

/// Which pathology an epoch-slice was bound by (paper §2: 𝔒1 vs 𝔒2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BottleneckVerdict {
    /// Memory waits dominate (governor admission, staging credits,
    /// feature-buffer slots): the run is starved by buffer/budget sizing.
    MemoryContentionBound,
    /// I/O waits dominate (ring completions, sync reads, transfers): the
    /// run is starved by device throughput or queueing.
    IoCongestionBound,
    /// Sampler/extractor/trainer compute dominates and both wait classes
    /// are small: the pipeline is overlapping I/O successfully.
    ComputeBound,
    /// No single cause clears the dominance thresholds.
    #[default]
    Balanced,
}

impl BottleneckVerdict {
    /// Stable lowercase label used in JSON artifacts and trace spans.
    pub fn label(self) -> &'static str {
        match self {
            BottleneckVerdict::MemoryContentionBound => "memory_contention_bound",
            BottleneckVerdict::IoCongestionBound => "io_congestion_bound",
            BottleneckVerdict::ComputeBound => "compute_bound",
            BottleneckVerdict::Balanced => "balanced",
        }
    }

    pub fn parse(label: &str) -> Option<BottleneckVerdict> {
        match label {
            "memory_contention_bound" => Some(BottleneckVerdict::MemoryContentionBound),
            "io_congestion_bound" => Some(BottleneckVerdict::IoCongestionBound),
            "compute_bound" => Some(BottleneckVerdict::ComputeBound),
            "balanced" => Some(BottleneckVerdict::Balanced),
            _ => None,
        }
    }
}

/// A wait class must hold at least this fraction of attributable time,
/// and lead the rival wait class by [`DOMINANCE_RATIO`], to bind the
/// verdict (DESIGN.md §10 documents the calibration).
pub const DOMINANCE_FRACTION: f64 = 0.40;
pub const DOMINANCE_RATIO: f64 = 1.5;
/// Compute binds only when it holds this fraction and both wait classes
/// stay under [`WAIT_MINOR_FRACTION`].
pub const COMPUTE_FRACTION: f64 = 0.60;
pub const WAIT_MINOR_FRACTION: f64 = 0.25;

/// Epoch-slice aggregation of [`BatchAttribution`] records: summed parts,
/// cause fractions over attributable time, and the resulting verdict.
///
/// Fractions are over *cause-attributable* time (mem waits + io waits +
/// compute), deliberately excluding queue residency (overlapped with other
/// batches' work, not a resource cost) and the residual.
#[derive(Debug, Clone, Default)]
pub struct AttributionReport {
    pub batches: u64,
    pub wall_ns: u64,
    pub sample_ns: u64,
    pub queue_ns: u64,
    pub extract_ns: u64,
    pub extract_compute_ns: u64,
    pub train_ns: u64,
    pub waits: WaitTotals,
    pub io_queue_ns: u64,
    pub io_service_ns: u64,
    pub residual_ns: u64,
    pub mem_fraction: f64,
    pub io_fraction: f64,
    pub compute_fraction: f64,
    pub residual_fraction: f64,
    pub verdict: BottleneckVerdict,
}

/// Fold per-batch records into an [`AttributionReport`] and classify.
pub fn aggregate(records: &[BatchAttribution]) -> AttributionReport {
    let mut r = AttributionReport::default();
    for rec in records {
        r.batches += 1;
        r.wall_ns = r.wall_ns.saturating_add(rec.wall_ns);
        r.sample_ns = r.sample_ns.saturating_add(rec.sample_ns);
        r.queue_ns = r
            .queue_ns
            .saturating_add(rec.queue_extract_ns)
            .saturating_add(rec.queue_train_ns);
        r.extract_ns = r.extract_ns.saturating_add(rec.extract_ns);
        r.extract_compute_ns = r
            .extract_compute_ns
            .saturating_add(rec.extract_compute_ns());
        r.train_ns = r.train_ns.saturating_add(rec.train_ns);
        r.waits.merge(&rec.waits);
        r.io_queue_ns = r.io_queue_ns.saturating_add(rec.io_queue_ns);
        r.io_service_ns = r.io_service_ns.saturating_add(rec.io_service_ns);
        r.residual_ns = r.residual_ns.saturating_add(rec.residual_ns());
    }
    let mem = r.waits.memory_ns() as f64;
    let io = r.waits.io_ns() as f64;
    let compute = (r.sample_ns + r.train_ns + r.extract_compute_ns) as f64;
    let denom = mem + io + compute;
    if denom > 0.0 {
        r.mem_fraction = mem / denom;
        r.io_fraction = io / denom;
        r.compute_fraction = compute / denom;
    }
    if r.wall_ns > 0 {
        r.residual_fraction = r.residual_ns as f64 / r.wall_ns as f64;
    }
    r.verdict = if r.mem_fraction >= DOMINANCE_FRACTION
        && r.mem_fraction >= DOMINANCE_RATIO * r.io_fraction
    {
        BottleneckVerdict::MemoryContentionBound
    } else if r.io_fraction >= DOMINANCE_FRACTION
        && r.io_fraction >= DOMINANCE_RATIO * r.mem_fraction
    {
        BottleneckVerdict::IoCongestionBound
    } else if r.compute_fraction >= COMPUTE_FRACTION
        && r.mem_fraction < WAIT_MINOR_FRACTION
        && r.io_fraction < WAIT_MINOR_FRACTION
    {
        BottleneckVerdict::ComputeBound
    } else {
        BottleneckVerdict::Balanced
    };
    r
}

impl AttributionReport {
    pub fn to_json(&self) -> Json {
        let mut waits = Json::obj();
        for k in WaitKind::ALL {
            waits.set(k.key(), self.waits.get(k).into());
        }
        let mut doc = Json::obj();
        doc.set("batches", self.batches.into())
            .set("wall_ns", self.wall_ns.into())
            .set("sample_ns", self.sample_ns.into())
            .set("queue_ns", self.queue_ns.into())
            .set("extract_ns", self.extract_ns.into())
            .set("extract_compute_ns", self.extract_compute_ns.into())
            .set("train_ns", self.train_ns.into())
            .set("waits", waits)
            .set("io_queue_ns", self.io_queue_ns.into())
            .set("io_service_ns", self.io_service_ns.into())
            .set("residual_ns", self.residual_ns.into())
            .set("mem_fraction", self.mem_fraction.into())
            .set("io_fraction", self.io_fraction.into())
            .set("compute_fraction", self.compute_fraction.into())
            .set("residual_fraction", self.residual_fraction.into())
            .set("verdict", self.verdict.label().into());
        doc
    }

    pub fn from_json(j: &Json) -> Option<AttributionReport> {
        let mut waits = WaitTotals::default();
        if let Some(w) = j.get("waits") {
            for k in WaitKind::ALL {
                waits.add(k, w.get(k.key()).and_then(Json::as_u64).unwrap_or(0));
            }
        }
        Some(AttributionReport {
            batches: j.get("batches")?.as_u64()?,
            wall_ns: j.get("wall_ns").and_then(Json::as_u64).unwrap_or(0),
            sample_ns: j.get("sample_ns").and_then(Json::as_u64).unwrap_or(0),
            queue_ns: j.get("queue_ns").and_then(Json::as_u64).unwrap_or(0),
            extract_ns: j.get("extract_ns").and_then(Json::as_u64).unwrap_or(0),
            extract_compute_ns: j
                .get("extract_compute_ns")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            train_ns: j.get("train_ns").and_then(Json::as_u64).unwrap_or(0),
            waits,
            io_queue_ns: j.get("io_queue_ns").and_then(Json::as_u64).unwrap_or(0),
            io_service_ns: j.get("io_service_ns").and_then(Json::as_u64).unwrap_or(0),
            residual_ns: j.get("residual_ns").and_then(Json::as_u64).unwrap_or(0),
            mem_fraction: j.get("mem_fraction").and_then(Json::as_f64).unwrap_or(0.0),
            io_fraction: j.get("io_fraction").and_then(Json::as_f64).unwrap_or(0.0),
            compute_fraction: j
                .get("compute_fraction")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            residual_fraction: j
                .get("residual_fraction")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            verdict: j
                .get("verdict")
                .and_then(Json::as_str)
                .and_then(BottleneckVerdict::parse)
                .unwrap_or_default(),
        })
    }

    /// Fold this report into a [`RunReport`]: cause fractions as scalars,
    /// the verdict as the `bottleneck_verdict` label.
    pub fn apply_to(&self, report: &mut RunReport) {
        report.add_scalar("attr.mem_fraction", self.mem_fraction);
        report.add_scalar("attr.io_fraction", self.io_fraction);
        report.add_scalar("attr.compute_fraction", self.compute_fraction);
        report.add_scalar("attr.residual_fraction", self.residual_fraction);
        report.add_scalar("attr.batches", self.batches as f64);
        report.add_label("bottleneck_verdict", self.verdict.label());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(waits: WaitTotals, sample: u64, train: u64, extract: u64) -> BatchAttribution {
        BatchAttribution {
            batch: 0,
            wall_ns: sample + extract + train,
            sample_ns: sample,
            queue_extract_ns: 0,
            extract_ns: extract,
            queue_train_ns: 0,
            train_ns: train,
            waits,
            io_queue_ns: 0,
            io_service_ns: 0,
        }
    }

    #[test]
    fn wait_timer_accumulates_into_thread_totals() {
        let _ = waits_take();
        {
            let _t = wait_timer(WaitKind::RingWait);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let totals = waits_take();
        assert!(totals.get(WaitKind::RingWait) >= 1_000_000);
        assert_eq!(totals.get(WaitKind::SlotWait), 0);
        // Second take sees a drained accumulator.
        assert_eq!(waits_take().sum(), 0);
    }

    #[test]
    fn memory_and_io_shares_partition_the_sum() {
        let mut t = WaitTotals::default();
        for (i, k) in WaitKind::ALL.iter().enumerate() {
            t.add(*k, (i as u64 + 1) * 100);
        }
        assert_eq!(t.memory_ns() + t.io_ns(), t.sum());
        assert_eq!(t.memory_ns(), 100 + 200 + 300);
    }

    #[test]
    fn conservation_residual_is_zero_for_telescoping_parts() {
        let mut w = WaitTotals::default();
        w.add(WaitKind::RingWait, 400);
        let r = rec(w, 100, 200, 1_000);
        assert_eq!(r.extract_compute_ns(), 600);
        assert_eq!(r.accounted_ns(), r.wall_ns);
        assert_eq!(r.residual_ns(), 0);
    }

    #[test]
    fn overlapping_timers_surface_as_residual() {
        // Σwaits > extract segment: double-counted time shows up as residual.
        let mut w = WaitTotals::default();
        w.add(WaitKind::RingWait, 900);
        w.add(WaitKind::StagingAcquire, 400);
        let r = rec(w, 0, 0, 1_000);
        assert_eq!(r.residual_ns(), 300);
    }

    #[test]
    fn verdict_memory_bound_when_memory_waits_dominate() {
        let mut w = WaitTotals::default();
        w.add(WaitKind::SlotWait, 8_000);
        w.add(WaitKind::RingWait, 500);
        let r = aggregate(&[rec(w, 100, 400, 9_000)]);
        assert_eq!(r.verdict, BottleneckVerdict::MemoryContentionBound);
        assert!(r.mem_fraction > 0.5, "mem={}", r.mem_fraction);
    }

    #[test]
    fn verdict_io_bound_when_io_waits_dominate() {
        let mut w = WaitTotals::default();
        w.add(WaitKind::RingWait, 6_000);
        w.add(WaitKind::SyncRead, 2_000);
        w.add(WaitKind::SlotWait, 500);
        let r = aggregate(&[rec(w, 100, 400, 9_000)]);
        assert_eq!(r.verdict, BottleneckVerdict::IoCongestionBound);
    }

    #[test]
    fn verdict_compute_bound_when_waits_are_minor() {
        let w = WaitTotals::default();
        let r = aggregate(&[rec(w, 1_000, 8_000, 1_000)]);
        assert_eq!(r.verdict, BottleneckVerdict::ComputeBound);
        assert!(r.compute_fraction > 0.99);
    }

    #[test]
    fn verdict_balanced_when_no_cause_clears_thresholds() {
        let mut w = WaitTotals::default();
        w.add(WaitKind::SlotWait, 3_000);
        w.add(WaitKind::RingWait, 2_600);
        let r = aggregate(&[rec(w, 1_000, 2_000, 6_000)]);
        assert_eq!(r.verdict, BottleneckVerdict::Balanced);
    }

    #[test]
    fn empty_aggregate_is_balanced_with_zero_fractions() {
        let r = aggregate(&[]);
        assert_eq!(r.verdict, BottleneckVerdict::Balanced);
        assert_eq!(r.batches, 0);
        assert_eq!(r.mem_fraction, 0.0);
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut w = WaitTotals::default();
        w.add(WaitKind::RingWait, 5_000);
        w.add(WaitKind::SlotWait, 100);
        let r = aggregate(&[rec(w, 200, 300, 6_000)]);
        let j = r.to_json();
        let back = AttributionReport::from_json(&j).unwrap();
        assert_eq!(back.verdict, r.verdict);
        assert_eq!(back.batches, r.batches);
        assert_eq!(back.waits, r.waits);
        assert!((back.io_fraction - r.io_fraction).abs() < 1e-12);
    }

    #[test]
    fn verdict_labels_round_trip() {
        for v in [
            BottleneckVerdict::MemoryContentionBound,
            BottleneckVerdict::IoCongestionBound,
            BottleneckVerdict::ComputeBound,
            BottleneckVerdict::Balanced,
        ] {
            assert_eq!(BottleneckVerdict::parse(v.label()), Some(v));
        }
        assert_eq!(BottleneckVerdict::parse("nope"), None);
    }
}
