//! Global metrics registry: named counters, gauges, and latency histograms.
//!
//! Every crate in the workspace reports into one process-wide registry so a
//! single [`MetricsSnapshot`] can show the storage stack, the pipeline, and
//! the device model side by side — the unified view behind run reports.
//!
//! Hot paths stay cheap: looking a metric up by name takes a registry lock
//! once, but the returned handle is a clonable `Arc` around an atomic (or a
//! sharded histogram), so instruments cache their handles at construction
//! and the per-event cost is one relaxed atomic op (counters/gauges) or one
//! uncontended shard lock (histograms).
//!
//! Naming convention: dot-separated lowercase paths, subsystem first —
//! `ssd.read_bytes`, `page_cache.hits`, `pipeline.extract_queue.depth`.
//! Baselines report under their own prefix via [`Scope`] (`pygplus.`,
//! `ginex.`, `marius.`), GNNDrive under the bare subsystem names, so one
//! report can compare stage breakdowns across systems.

use crate::json::Json;
use crate::Histogram;
use gnndrive_sync::{LockRank, OrderedMutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// A monotonically increasing event/byte counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level (queue depth, resident pages, bytes in use).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    pub fn sub(&self, d: i64) {
        self.0.fetch_sub(d, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

const HIST_SHARDS: usize = 8;

struct ShardedHistogram {
    shards: [OrderedMutex<Histogram>; HIST_SHARDS],
}

/// Handle to a registered latency histogram (values in nanoseconds by
/// convention). Recording locks one of eight shards chosen per-thread, so
/// concurrent recorders rarely contend.
#[derive(Clone)]
pub struct HistogramHandle(Arc<ShardedHistogram>);

impl std::fmt::Debug for HistogramHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistogramHandle")
            .field("count", &self.merged().count())
            .finish()
    }
}

thread_local! {
    static SHARD: usize = {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        NEXT.fetch_add(1, Ordering::Relaxed) % HIST_SHARDS
    };
}

impl HistogramHandle {
    pub fn record(&self, v: u64) {
        let shard = SHARD.with(|s| *s);
        self.0.shards[shard].lock().record(v);
    }

    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Merged view across all shards.
    pub fn merged(&self) -> Histogram {
        let mut out = Histogram::new();
        for s in &self.0.shards {
            out.merge(&s.lock());
        }
        out
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(HistogramHandle),
}

fn registry() -> &'static OrderedMutex<HashMap<String, Metric>> {
    static REGISTRY: OnceLock<OrderedMutex<HashMap<String, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| OrderedMutex::new(LockRank::Telemetry, HashMap::new()))
}

/// Get (or register) the counter named `name`.
///
/// Panics if `name` is already registered as a different metric kind — a
/// naming collision is a bug worth failing loudly on.
pub fn counter(name: &str) -> Counter {
    let mut reg = registry().lock();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))))
    {
        Metric::Counter(c) => c.clone(),
        _ => panic!("metric {name:?} already registered with a different kind"),
    }
}

/// Get (or register) the gauge named `name`.
pub fn gauge(name: &str) -> Gauge {
    let mut reg = registry().lock();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Gauge(Gauge(Arc::new(AtomicI64::new(0)))))
    {
        Metric::Gauge(g) => g.clone(),
        _ => panic!("metric {name:?} already registered with a different kind"),
    }
}

/// Get (or register) the nanosecond histogram named `name`.
pub fn histogram_ns(name: &str) -> HistogramHandle {
    let mut reg = registry().lock();
    match reg.entry(name.to_string()).or_insert_with(|| {
        Metric::Histogram(HistogramHandle(Arc::new(ShardedHistogram {
            shards: std::array::from_fn(|_| {
                OrderedMutex::new(LockRank::Telemetry, Histogram::new())
            }),
        })))
    }) {
        Metric::Histogram(h) => h.clone(),
        _ => panic!("metric {name:?} already registered with a different kind"),
    }
}

/// Zero every registered metric **in place**.
///
/// Handles cached by instruments stay valid and keep pointing at the same
/// storage; only the recorded values are cleared. Used between benchmark
/// runs so each system's report starts from a clean slate.
pub fn reset_metrics() {
    let reg = registry().lock();
    for metric in reg.values() {
        match metric {
            Metric::Counter(c) => c.0.store(0, Ordering::Relaxed),
            Metric::Gauge(g) => g.0.store(0, Ordering::Relaxed),
            Metric::Histogram(h) => {
                for s in &h.0.shards {
                    *s.lock() = Histogram::new();
                }
            }
        }
    }
}

/// Percentile summary of a histogram, as captured in snapshots/reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistSummary {
    pub count: u64,
    pub mean_ns: f64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub max_ns: u64,
}

impl HistSummary {
    pub fn of(h: &Histogram) -> HistSummary {
        HistSummary {
            count: h.count(),
            mean_ns: h.mean(),
            p50_ns: h.percentile(0.50),
            p95_ns: h.percentile(0.95),
            p99_ns: h.percentile(0.99),
            max_ns: h.max(),
        }
    }

    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("count", self.count.into())
            .set("mean_ns", self.mean_ns.into())
            .set("p50_ns", self.p50_ns.into())
            .set("p95_ns", self.p95_ns.into())
            .set("p99_ns", self.p99_ns.into())
            .set("max_ns", self.max_ns.into());
        o
    }

    pub fn from_json(j: &Json) -> Option<HistSummary> {
        Some(HistSummary {
            count: j.get("count")?.as_u64()?,
            mean_ns: j.get("mean_ns")?.as_f64()?,
            p50_ns: j.get("p50_ns")?.as_u64()?,
            p95_ns: j.get("p95_ns")?.as_u64()?,
            p99_ns: j.get("p99_ns")?.as_u64()?,
            max_ns: j.get("max_ns")?.as_u64()?,
        })
    }
}

/// The captured value of one named metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    Histogram(HistSummary),
}

/// A point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    entries: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v))
    }

    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Counter value by name (0 if absent or a different kind — convenient
    /// for report tables).
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    pub fn gauge(&self, name: &str) -> i64 {
        match self.get(name) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        for (name, value) in &self.entries {
            let v = match value {
                MetricValue::Counter(c) => {
                    let mut j = Json::obj();
                    j.set("type", "counter".into()).set("value", (*c).into());
                    j
                }
                MetricValue::Gauge(g) => {
                    let mut j = Json::obj();
                    j.set("type", "gauge".into())
                        .set("value", Json::Num(*g as f64));
                    j
                }
                MetricValue::Histogram(h) => {
                    let mut j = h.to_json();
                    j.set("type", "histogram".into());
                    j
                }
            };
            o.set(name, v);
        }
        o
    }
}

/// Capture every registered metric. Histograms are summarized (the shards
/// are merged and reduced to percentiles).
pub fn snapshot_metrics() -> MetricsSnapshot {
    let reg = registry().lock();
    let mut entries: Vec<(String, MetricValue)> = reg
        .iter()
        .map(|(name, metric)| {
            let value = match metric {
                Metric::Counter(c) => MetricValue::Counter(c.get()),
                Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                Metric::Histogram(h) => MetricValue::Histogram(HistSummary::of(&h.merged())),
            };
            (name.clone(), value)
        })
        .collect();
    drop(reg);
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    MetricsSnapshot { entries }
}

/// A name prefix under which a subsystem (or baseline) registers metrics:
/// `Scope::new("ginex").counter("cache.hits")` → `ginex.cache.hits`.
#[derive(Debug, Clone)]
pub struct Scope {
    prefix: String,
}

impl Scope {
    pub fn new(prefix: &str) -> Scope {
        let prefix = prefix.trim_end_matches('.');
        Scope {
            prefix: if prefix.is_empty() {
                String::new()
            } else {
                format!("{prefix}.")
            },
        }
    }

    pub fn name(&self, metric: &str) -> String {
        format!("{}{metric}", self.prefix)
    }

    pub fn counter(&self, metric: &str) -> Counter {
        counter(&self.name(metric))
    }

    pub fn gauge(&self, metric: &str) -> Gauge {
        gauge(&self.name(metric))
    }

    pub fn histogram_ns(&self, metric: &str) -> HistogramHandle {
        histogram_ns(&self.name(metric))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once() {
        let a = counter("test.metrics.ops");
        let b = counter("test.metrics.ops");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        let g = gauge("test.metrics.depth");
        g.set(7);
        g.sub(2);
        assert_eq!(gauge("test.metrics.depth").get(), 5);
    }

    #[test]
    fn histogram_merges_across_threads() {
        let h = histogram_ns("test.metrics.lat");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for v in 1..=100u64 {
                        h.record(v * 1000);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let merged = h.merged();
        assert_eq!(merged.count(), 400);
        assert!(merged.percentile(0.5) >= 40_000);
    }

    #[test]
    fn snapshot_is_sorted_and_typed() {
        counter("test.snap.b").add(2);
        gauge("test.snap.a").set(-3);
        histogram_ns("test.snap.c").record(5);
        let snap = snapshot_metrics();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert!(snap.counter("test.snap.b") >= 2);
        assert_eq!(snap.gauge("test.snap.a"), -3);
        assert!(matches!(
            snap.get("test.snap.c"),
            Some(MetricValue::Histogram(h)) if h.count >= 1
        ));
    }

    #[test]
    fn reset_keeps_handles_live() {
        let c = counter("test.reset.ops");
        c.add(10);
        reset_metrics();
        assert_eq!(c.get(), 0);
        c.add(1);
        assert_eq!(counter("test.reset.ops").get(), 1);
    }

    #[test]
    fn scope_prefixes_names() {
        let s = Scope::new("ginex");
        assert_eq!(s.name("cache.hits"), "ginex.cache.hits");
        s.counter("cache.hits").inc();
        assert!(snapshot_metrics().counter("ginex.cache.hits") >= 1);
    }

    #[test]
    fn snapshot_json_round_trips() {
        counter("test.json.reads").add(9);
        let snap = snapshot_metrics();
        let text = snap.to_json().to_json_string();
        let back = Json::parse(&text).unwrap();
        let v = back.get("test.json.reads").unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("counter"));
        assert!(v.get("value").unwrap().as_u64().unwrap() >= 9);
    }
}
