//! Crash-atomic host-side persistence.
//!
//! Every host artifact in the stack (checkpoints, traces, dataset files,
//! run reports) goes through this module so a process crash at any
//! instant leaves the destination either the complete old version, the
//! complete new version, or absent — never truncated. The protocol is the
//! classic stage-then-publish sequence:
//!
//! 1. write the full payload to a hidden temp file in the destination
//!    directory (`.<name>.tmp`),
//! 2. `fsync` the temp file so its contents are durable,
//! 3. publish it over the destination with `rename` (atomic on POSIX) or
//!    `hard_link` (for create-new semantics), and
//! 4. best-effort `fsync` the parent directory so the new directory entry
//!    is durable too.
//!
//! [`crash::point`]s are threaded between every step so the crash-schedule
//! harness can cut the sequence anywhere and verify the contract. A cut at
//! the post-write point additionally *truncates* the temp file to a seeded
//! prefix, modelling the partial page-out a real power cut leaves behind —
//! loaders never open temp names, so a torn temp file is garbage on disk,
//! not an observable state.
//!
//! Temp files are deliberately left behind on a crash or I/O error: a dead
//! process cannot clean up after itself, and the harness asserts that
//! leaked temp files never affect recovery.

use crate::crash;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// A payload staged to a durable temp file, ready to publish.
pub struct StagedFile {
    tmp: PathBuf,
    tag: String,
}

fn tmp_name(dest: &Path) -> io::Result<PathBuf> {
    let name = dest.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("destination {} has no file name", dest.display()),
        )
    })?;
    let mut tmp = std::ffi::OsString::from(".");
    tmp.push(name);
    tmp.push(".tmp");
    Ok(dest.with_file_name(tmp))
}

/// `fsync` is meaningless (and unsupported) under miri; skip it there so
/// the interpreter can still execute these paths.
fn sync_file(f: &File) -> io::Result<()> {
    if cfg!(miri) {
        return Ok(());
    }
    f.sync_all()
}

/// Best-effort durability for the directory entry created by a publish.
/// Failure to fsync a directory (not supported everywhere) downgrades the
/// guarantee, it does not invalidate the artifact — so errors are dropped.
fn sync_dir(dir: &Path) {
    if cfg!(miri) {
        return;
    }
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Stage `bytes` for `dest`: write them to a hidden temp file next to the
/// destination and fsync it. Crash points: `<tag>.begin` (nothing written
/// yet), `<tag>.tmp` (temp written, not yet durable — a cut here tears the
/// temp file to a seeded prefix), `<tag>.sync` (temp durable).
pub fn stage(tag: &str, dest: &Path, bytes: &[u8]) -> io::Result<StagedFile> {
    crash::io_point(&format!("{tag}.begin"))?;
    if let Some(dir) = dest.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir)?;
        }
    }
    let tmp = tmp_name(dest)?;
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    if let Err(cut) = crash::point(&format!("{tag}.tmp")) {
        // Power died with the page cache half flushed: keep a seeded
        // prefix of the temp file and abandon it, exactly as a real crash
        // would. The destination is untouched.
        let keep = (bytes.len() as f64 * cut.keep) as u64;
        let _ = f.set_len(keep);
        return Err(cut.into());
    }
    sync_file(&f)?;
    crash::io_point(&format!("{tag}.sync"))?;
    Ok(StagedFile {
        tmp,
        tag: tag.to_string(),
    })
}

impl StagedFile {
    /// Publish over `dest` with an atomic `rename`, replacing any previous
    /// version. Crash point `<tag>.publish` sits after the rename: a cut
    /// there leaves the destination fully published (rename is atomic).
    pub fn publish(self, dest: &Path) -> io::Result<()> {
        fs::rename(&self.tmp, dest)?;
        let publish_point = format!("{}.publish", self.tag);
        crash::io_point(&publish_point)?;
        if let Some(dir) = dest.parent() {
            sync_dir(dir);
        }
        Ok(())
    }

    /// Publish to `dest` only if it does not already exist (the atomic
    /// analogue of `O_CREAT|O_EXCL`), via `hard_link`. On
    /// `AlreadyExists` the staged file is kept so the caller can retry
    /// with a different name; call [`discard`](Self::discard) when done.
    pub fn publish_new(&self, dest: &Path) -> io::Result<()> {
        fs::hard_link(&self.tmp, dest)?;
        let publish_point = format!("{}.publish", self.tag);
        crash::io_point(&publish_point)?;
        if let Some(dir) = dest.parent() {
            sync_dir(dir);
        }
        Ok(())
    }

    /// Remove the staged temp file (after a successful `publish_new`, or
    /// to abandon the stage).
    pub fn discard(self) {
        let _ = fs::remove_file(&self.tmp);
    }
}

/// Atomically replace `path` with `bytes`: the destination is observable
/// only as its complete old version or its complete new version,
/// whichever instant the process dies at. `tag` names the crash points
/// (`<tag>.begin` / `.tmp` / `.sync` / `.publish`).
pub fn atomic_write_file(tag: &str, path: &Path, bytes: &[u8]) -> io::Result<()> {
    stage(tag, path, bytes)?.publish(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::tests::GATE;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("gnndrive-persist-test").join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn atomic_write_replaces_whole_file() {
        let _g = GATE.lock();
        crash::disarm();
        let dir = scratch("replace");
        let path = dir.join("artifact.bin");
        atomic_write_file("test.art", &path, b"version-1").expect("write v1");
        assert_eq!(fs::read(&path).expect("read v1"), b"version-1");
        atomic_write_file("test.art", &path, b"v2").expect("write v2");
        assert_eq!(fs::read(&path).expect("read v2"), b"v2");
        // No temp residue on the happy path.
        assert_eq!(fs::read_dir(&dir).expect("dir").count(), 1);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn every_cut_leaves_old_version_or_new_version() {
        let _g = GATE.lock();
        crash::disarm();
        let dir = scratch("cuts");
        let path = dir.join("artifact.bin");
        atomic_write_file("test.art", &path, b"old-contents").expect("seed old");

        crash::start_recording();
        atomic_write_file("test.art", &path, b"new-contents!").expect("record");
        let schedule = crash::stop_recording();
        assert_eq!(
            schedule,
            vec!["test.art.begin", "test.art.tmp", "test.art.sync", "test.art.publish"]
        );

        for cut_at in 0..schedule.len() as u64 {
            // Reset to the old version, then crash mid-rewrite.
            crash::disarm();
            atomic_write_file("test.art", &path, b"old-contents").expect("reset");
            crash::arm(cut_at, 0xC0FFEE + cut_at);
            let err = atomic_write_file("test.art", &path, b"new-contents!")
                .expect_err("armed cut must fire");
            assert_eq!(err.kind(), io::ErrorKind::Interrupted);
            crash::disarm();
            let observed = fs::read(&path).expect("dest must exist");
            assert!(
                observed == b"old-contents" || observed == b"new-contents!",
                "cut {cut_at} exposed a torn artifact: {observed:?}"
            );
        }
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn cut_at_tmp_point_tears_only_the_temp_file() {
        let _g = GATE.lock();
        crash::disarm();
        let dir = scratch("torn-tmp");
        let path = dir.join("artifact.bin");
        let payload = vec![0xAB; 4096];
        crash::arm(1, 7); // ordinal 1 == <tag>.tmp
        atomic_write_file("test.art", &path, &payload).expect_err("cut at tmp");
        crash::disarm();
        assert!(!path.exists(), "destination must not appear");
        let tmp = dir.join(".artifact.bin.tmp");
        let torn = fs::read(&tmp).expect("torn temp is left behind");
        assert!(torn.len() < payload.len(), "temp must be truncated");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn publish_new_refuses_existing_destinations() {
        let _g = GATE.lock();
        crash::disarm();
        let dir = scratch("publish-new");
        let a = dir.join("r000.json");
        let b = dir.join("r001.json");
        fs::write(&a, b"taken").expect("occupy a");
        let staged = stage("test.new", &a, b"payload").expect("stage");
        let err = staged.publish_new(&a).expect_err("a is taken");
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        staged.publish_new(&b).expect("b is free");
        staged.discard();
        assert_eq!(fs::read(&a).expect("a"), b"taken");
        assert_eq!(fs::read(&b).expect("b"), b"payload");
        assert!(!dir.join(".r000.json.tmp").exists(), "discard removes temp");
        let _ = fs::remove_dir_all(dir);
    }
}
