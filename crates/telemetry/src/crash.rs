//! Deterministic crash-point registry for crash-consistency testing.
//!
//! Whole-process crashes (OOM kill, power loss, operator `kill -9`) are
//! the one fault class a fault-injecting device cannot model on its own:
//! they interrupt *host-side* persistence mid-sequence. Every durable-write
//! path in the stack therefore threads named [`point`] calls through its
//! critical ordering (stage temp file → fsync → publish; shadow-write blob
//! → flush barrier → commit record), and the crash harness *arms* the
//! registry to cut the run at exactly one of those points.
//!
//! A cut is simulated process death: the armed `point` call returns
//! [`CrashCut`], and — because a dead process executes nothing further —
//! every subsequent `point` call in the process keeps failing until the
//! harness calls [`disarm`] to "restart". The harness then runs recovery
//! and checks the crash-consistency contract (every artifact is the old
//! version, the new version, or a typed error — never a half-written
//! state).
//!
//! Schedules are enumerated, not guessed: a *recording* run logs the name
//! of every point the workload passes ([`start_recording`] /
//! [`stop_recording`]), and the harness re-runs the workload once per
//! recorded ordinal. Decisions are a pure function of (armed ordinal,
//! seed), so a schedule replays bit-identically.
//!
//! When the registry is disabled (the default) a `point` call is one
//! relaxed atomic load — production paths pay effectively nothing.
//!
//! Progress is visible in the closed `storage.crash.*` metric namespace:
//! `points` (crash points evaluated while the registry is active), `cuts`
//! (simulated crashes fired), and `recoveries` (successful post-crash
//! recoveries recorded by [`note_recovery`]).

use crate::counter;
use gnndrive_sync::{LockRank, OrderedMutex};
use std::fmt;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};

/// A simulated process crash fired by an armed [`point`].
#[derive(Debug, Clone, PartialEq)]
pub struct CrashCut {
    /// Name of the crash point that fired (or, for the trailing errors a
    /// dead process keeps returning, the point where death happened).
    pub point: String,
    /// Ordinal of the firing point in this armed run (0-based).
    pub ordinal: u64,
    /// Seeded unit value in `[0, 1)` for partial-effect decisions at the
    /// cut site (e.g. how much of a staged temp file survives page-out).
    pub keep: f64,
}

impl fmt::Display for CrashCut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulated crash cut at point {:?} (ordinal {})",
            self.point, self.ordinal
        )
    }
}

impl std::error::Error for CrashCut {}

impl From<CrashCut> for io::Error {
    fn from(cut: CrashCut) -> Self {
        io::Error::new(io::ErrorKind::Interrupted, cut)
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Mode {
    /// Count and log point names; never cut. The enumeration pass.
    Recording,
    /// Cut at crash-point ordinal `cut_at`; `tripped` holds the cut once
    /// it fires (the process is then "dead" and every point fails).
    Armed {
        cut_at: u64,
        seed: u64,
        tripped: Option<CrashCut>,
    },
}

struct Registry {
    mode: Option<Mode>,
    /// Points evaluated since the last [`arm`]/[`start_recording`].
    ordinal: u64,
    /// Point names seen while recording.
    log: Vec<String>,
}

/// Fast-path gate: `false` (the default) means [`point`] returns `Ok`
/// without touching the registry lock.
static ACTIVE: AtomicBool = AtomicBool::new(false);

static REGISTRY: OrderedMutex<Registry> = OrderedMutex::new(
    LockRank::Telemetry,
    Registry {
        mode: None,
        ordinal: 0,
        log: Vec::new(),
    },
);

/// splitmix64 → unit interval; local copy so the registry stays in the
/// base telemetry crate (the storage fault injector has its own).
fn mix_unit(seed: u64, ordinal: u64, stream: u64) -> f64 {
    let mut z = seed
        .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(ordinal.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Declare a crash point on a persistence path. Returns `Err` exactly when
/// an armed schedule cuts here (and on every later point of the same run —
/// a crashed process executes nothing further). With the registry disabled
/// this is a single relaxed atomic load.
pub fn point(name: &str) -> Result<(), CrashCut> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return Ok(());
    }
    // Counter bumps happen after the registry guard is dropped: the
    // metrics registry takes its own lock, and holding both at once would
    // invert the lock lattice for no benefit.
    let (result, fresh_cut) = {
        let mut reg = REGISTRY.lock();
        if reg.mode.is_none() {
            return Ok(());
        }
        let ordinal = reg.ordinal;
        reg.ordinal += 1;
        let mut record = false;
        let mut fresh_cut = false;
        let result = match reg.mode.as_mut() {
            Some(Mode::Recording) => {
                record = true;
                Ok(())
            }
            Some(Mode::Armed {
                cut_at,
                seed,
                tripped,
            }) => {
                if let Some(cut) = tripped {
                    // Already dead: keep failing so the error propagates out
                    // of whatever the harness is still unwinding.
                    Err(cut.clone())
                } else if ordinal == *cut_at {
                    let cut = CrashCut {
                        point: name.to_string(),
                        ordinal,
                        keep: mix_unit(*seed, ordinal, 11),
                    };
                    *tripped = Some(cut.clone());
                    fresh_cut = true;
                    Err(cut)
                } else {
                    Ok(())
                }
            }
            None => Ok(()),
        };
        if record {
            reg.log.push(name.to_string());
        }
        (result, fresh_cut)
    };
    counter("storage.crash.points").inc();
    if fresh_cut {
        counter("storage.crash.cuts").inc();
    }
    result
}

/// [`point`] for `io::Result` paths: a cut converts into an
/// `io::ErrorKind::Interrupted` error carrying the [`CrashCut`].
pub fn io_point(name: &str) -> io::Result<()> {
    point(name).map_err(io::Error::from)
}

/// Arm a schedule: the `cut_at`-th crash point (0-based) evaluated after
/// this call fires a [`CrashCut`]. Resets the point ordinal.
pub fn arm(cut_at: u64, seed: u64) {
    let mut reg = REGISTRY.lock();
    reg.mode = Some(Mode::Armed {
        cut_at,
        seed,
        tripped: None,
    });
    reg.ordinal = 0;
    reg.log.clear();
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Begin an enumeration pass: every crash point logs its name instead of
/// ever cutting. Resets the point ordinal.
pub fn start_recording() {
    let mut reg = REGISTRY.lock();
    reg.mode = Some(Mode::Recording);
    reg.ordinal = 0;
    reg.log.clear();
    ACTIVE.store(true, Ordering::Relaxed);
}

/// End an enumeration pass, returning the names of every crash point the
/// workload passed, in order. Index `i` of this log is the `cut_at`
/// ordinal that [`arm`] needs to cut there.
pub fn stop_recording() -> Vec<String> {
    let mut reg = REGISTRY.lock();
    ACTIVE.store(false, Ordering::Relaxed);
    reg.mode = None;
    reg.ordinal = 0;
    std::mem::take(&mut reg.log)
}

/// The cut the armed schedule fired, if any ("did the process die?").
pub fn tripped() -> Option<CrashCut> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    match &REGISTRY.lock().mode {
        Some(Mode::Armed { tripped, .. }) => tripped.clone(),
        _ => None,
    }
}

/// Disarm the registry ("restart the process"): crash points return to
/// their zero-cost disabled state.
pub fn disarm() {
    let mut reg = REGISTRY.lock();
    ACTIVE.store(false, Ordering::Relaxed);
    reg.mode = None;
    reg.ordinal = 0;
    reg.log.clear();
}

/// Record one successful post-crash recovery (the harness or a recovery
/// helper landed on a durable artifact after a cut).
pub fn note_recovery() {
    counter("storage.crash.recoveries").inc();
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// The registry is process-global; every test in this crate that
    /// traverses crash points serializes on this gate.
    pub(crate) static GATE: OrderedMutex<()> = OrderedMutex::new(LockRank::Sync, ());

    #[test]
    fn disabled_points_are_inert() {
        let _g = GATE.lock();
        disarm();
        for _ in 0..100 {
            assert_eq!(point("anything"), Ok(()));
        }
        assert_eq!(tripped(), None);
    }

    #[test]
    fn recording_logs_every_point_in_order() {
        let _g = GATE.lock();
        start_recording();
        point("a").expect("recording never cuts");
        point("b").expect("recording never cuts");
        point("a").expect("recording never cuts");
        let log = stop_recording();
        assert_eq!(log, vec!["a", "b", "a"]);
        // Stopping disarms: later points are inert again.
        assert_eq!(point("c"), Ok(()));
    }

    #[test]
    fn armed_schedule_cuts_at_the_exact_ordinal_and_stays_dead() {
        let _g = GATE.lock();
        arm(2, 0xDEAD);
        assert!(point("p0").is_ok());
        assert!(point("p1").is_ok());
        let cut = point("p2").expect_err("ordinal 2 must cut");
        assert_eq!((cut.point.as_str(), cut.ordinal), ("p2", 2));
        assert!((0.0..1.0).contains(&cut.keep));
        // A dead process stays dead: every later point also fails, with
        // the original cut.
        assert_eq!(point("p3").expect_err("still dead"), cut);
        assert_eq!(tripped(), Some(cut.clone()));
        disarm();
        assert!(point("p4").is_ok());
        assert_eq!(tripped(), None);

        // Same (ordinal, seed) → same keep fraction; different seed differs.
        arm(2, 0xDEAD);
        point("p0").ok();
        point("p1").ok();
        let again = point("p2").expect_err("replay");
        assert_eq!(again, cut, "schedules replay bit-identically");
        disarm();
        arm(2, 0xBEEF);
        point("p0").ok();
        point("p1").ok();
        let other = point("p2").expect_err("other seed");
        assert_ne!(other.keep, cut.keep, "seed must drive the keep fraction");
        disarm();
    }

    #[test]
    fn io_point_converts_to_interrupted() {
        let _g = GATE.lock();
        arm(0, 1);
        let err = io_point("host.write").expect_err("cut at 0");
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        let inner = err.get_ref().expect("payload");
        assert!(inner.to_string().contains("host.write"), "{inner}");
        disarm();
    }
}
