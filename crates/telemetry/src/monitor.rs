//! Interval sampler turning counter deltas into utilization time series.

use crate::registry::{gpu_count, origin, snapshot, Totals};
use crate::{State, ThreadClass};
use gnndrive_sync::{LockRank, OrderedMutex};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// One point of the utilization series (the paper's Figs 3 & 11 panels).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Seconds since telemetry origin (experiment start).
    pub t_secs: f64,
    /// Fraction of CPU-thread time spent computing during the interval.
    pub cpu_util: f64,
    /// Fraction of GPU capacity busy during the interval
    /// (compute-time / (interval × number of simulated GPUs)).
    pub gpu_util: f64,
    /// Fraction of CPU-thread time spent blocked on I/O during the interval.
    pub io_wait: f64,
}

fn ratios(delta: &Totals, wall_nanos: u64) -> (f64, f64, f64) {
    let cpu = delta.class(ThreadClass::Cpu);
    let gpu = delta.class(ThreadClass::Gpu);
    let cpu_total = cpu.total_nanos().max(1) as f64;
    let gpu_capacity = (wall_nanos as f64) * gpu_count().max(1) as f64;
    (
        cpu.nanos(State::Compute) as f64 / cpu_total,
        (gpu.nanos(State::Compute) as f64 / gpu_capacity.max(1.0)).min(1.0),
        cpu.nanos(State::IoWait) as f64 / cpu_total,
    )
}

/// Background sampler. Construct with [`Monitor::start`], stop with
/// [`Monitor::stop`] to retrieve the recorded series.
pub struct Monitor {
    stop: Arc<AtomicBool>,
    series: Arc<OrderedMutex<Vec<SeriesPoint>>>,
    handle: Option<JoinHandle<()>>,
}

impl Monitor {
    /// Start sampling every `interval`.
    pub fn start(interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let series = Arc::new(OrderedMutex::new(LockRank::Telemetry, Vec::new()));
        let stop2 = Arc::clone(&stop);
        let series2 = Arc::clone(&series);
        let start = origin();
        let handle = std::thread::Builder::new()
            .name("telemetry-monitor".into())
            .spawn(move || {
                let mut prev = snapshot();
                let mut prev_t = std::time::Instant::now();
                loop {
                    // Sleep up to `interval`, waking early on stop so short
                    // runs still flush their partial tail interval below.
                    let slice = interval
                        .min(Duration::from_millis(2))
                        .max(Duration::from_micros(100));
                    let deadline = std::time::Instant::now() + interval;
                    let mut stopping = stop2.load(Ordering::Acquire);
                    while !stopping && std::time::Instant::now() < deadline {
                        std::thread::sleep(slice);
                        stopping = stop2.load(Ordering::Acquire);
                    }
                    let now = snapshot();
                    let wall = prev_t.elapsed();
                    prev_t = std::time::Instant::now();
                    let delta = now.delta_since(&prev);
                    prev = now;
                    if !wall.is_zero() {
                        let (cpu_util, gpu_util, io_wait) = ratios(&delta, wall.as_nanos() as u64);
                        series2.lock().push(SeriesPoint {
                            t_secs: start.elapsed().as_secs_f64(),
                            cpu_util,
                            gpu_util,
                            io_wait,
                        });
                    }
                    if stopping {
                        break;
                    }
                }
            })
            .expect("spawn telemetry monitor");
        Monitor {
            stop,
            series,
            handle: Some(handle),
        }
    }

    /// Stop the sampler and return the recorded series.
    pub fn stop(mut self) -> Vec<SeriesPoint> {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        std::mem::take(&mut *self.series.lock())
    }

    /// Aggregate ratios over a whole run: `(cpu_util, gpu_util, io_wait)`
    /// from the delta between two snapshots spanning `wall` time.
    pub fn summarize(before: &Totals, after: &Totals, wall: Duration) -> (f64, f64, f64) {
        ratios(&after.delta_since(before), wall.as_nanos() as u64)
    }
}

impl Drop for Monitor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{register_thread, reset, set_gpu_count, state, state_as};

    #[test]
    fn monitor_records_busy_and_idle_phases() {
        reset();
        register_thread(ThreadClass::Cpu);
        let monitor = Monitor::start(Duration::from_millis(10));
        {
            let _g = state(State::IoWait);
            std::thread::sleep(Duration::from_millis(40));
        }
        let series = monitor.stop();
        assert!(!series.is_empty());
        let max_iowait = series.iter().map(|p| p.io_wait).fold(0.0, f64::max);
        assert!(
            max_iowait > 0.5,
            "expected an interval dominated by iowait, max was {max_iowait}"
        );
    }

    #[test]
    fn stop_flushes_partial_tail_interval() {
        reset();
        register_thread(ThreadClass::Cpu);
        // Interval far longer than the run: the only point the series can
        // contain is the partial tail flushed at shutdown.
        let monitor = Monitor::start(Duration::from_secs(60));
        {
            let _g = state(State::IoWait);
            std::thread::sleep(Duration::from_millis(30));
        }
        let series = monitor.stop();
        assert!(!series.is_empty(), "tail interval lost on stop");
        assert!(
            series.last().unwrap().io_wait > 0.3,
            "tail point should reflect the stalled run: {series:?}"
        );
    }

    #[test]
    fn summarize_splits_compute_and_io() {
        reset();
        register_thread(ThreadClass::Cpu);
        let before = snapshot();
        let t0 = std::time::Instant::now();
        {
            let _g = state(State::Compute);
            std::thread::sleep(Duration::from_millis(10));
        }
        {
            let _g = state(State::IoWait);
            std::thread::sleep(Duration::from_millis(10));
        }
        let after = snapshot();
        let (cpu, _gpu, iow) = Monitor::summarize(&before, &after, t0.elapsed());
        assert!(cpu > 0.2 && cpu < 0.8, "cpu={cpu}");
        assert!(iow > 0.2 && iow < 0.8, "iow={iow}");
    }

    #[test]
    fn gpu_kernel_time_counts_against_gpu_capacity() {
        reset();
        set_gpu_count(1);
        register_thread(ThreadClass::Cpu);
        let before = snapshot();
        let t0 = std::time::Instant::now();
        {
            let _g = state_as(ThreadClass::Gpu, State::Compute);
            std::thread::sleep(Duration::from_millis(20));
        }
        std::thread::sleep(Duration::from_millis(20));
        let after = snapshot();
        let (_cpu, gpu, _iow) = Monitor::summarize(&before, &after, t0.elapsed());
        assert!(gpu > 0.25 && gpu < 0.75, "gpu={gpu}");
    }

    #[test]
    fn blocked_thread_is_visible_mid_stall() {
        // A thread parked in IoWait must show up in a snapshot taken by
        // *another* thread before the stall ends.
        reset();
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let h = std::thread::spawn(move || {
            register_thread(ThreadClass::Cpu);
            let _g = state(State::IoWait);
            while !f2.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        std::thread::sleep(Duration::from_millis(30));
        let totals = snapshot();
        let iow = totals.class(ThreadClass::Cpu).nanos(State::IoWait);
        flag.store(true, Ordering::Relaxed);
        h.join().unwrap();
        assert!(iow >= 15_000_000, "mid-stall iowait invisible: {iow}ns");
    }
}
